package suffix

import "fmt"

// BWT computes the Burrows–Wheeler transform of s from its suffix
// array: bwt[i] = s[(sa[i]+n−1) mod n]. The paper defines the BWT via
// sorted rotations (Fig. 2); rotation order coincides with suffix order
// exactly when s ends with a unique smallest terminator, which the
// trajectory string of Def. 2 guarantees with its final '#'. Callers
// must uphold that precondition.
func BWT(s []uint32, sa []int32) []uint32 {
	n := len(s)
	if len(sa) != n {
		panic(fmt.Sprintf("suffix: BWT length mismatch: |s|=%d |sa|=%d", n, len(sa)))
	}
	bwt := make([]uint32, n)
	for i, p := range sa {
		if p == 0 {
			bwt[i] = s[n-1]
		} else {
			bwt[i] = s[p-1]
		}
	}
	return bwt
}

// Transform is a convenience that computes SA and BWT in one call.
func Transform(s []uint32, sigma int) (bwt []uint32, sa []int32) {
	sa = Array(s, sigma)
	return BWT(s, sa), sa
}

// Inverse reconstructs the original string from its BWT using
// LF-mapping. It requires the same precondition as BWT: the original
// string ended with a unique smallest terminator, whose BWT row is the
// first row (index 0) of the sorted rotation matrix. sigma bounds the
// symbol values.
func Inverse(bwt []uint32, sigma int) []uint32 {
	n := len(bwt)
	if n == 0 {
		return nil
	}
	// C[c] = number of symbols < c; occ[i] = rank of bwt[i] among equal
	// symbols in bwt[0..i].
	counts := make([]int32, sigma+1)
	for _, c := range bwt {
		counts[c+1]++
	}
	for c := 1; c <= sigma; c++ {
		counts[c] += counts[c-1]
	}
	occ := make([]int32, n)
	running := make([]int32, sigma)
	for i, c := range bwt {
		occ[i] = running[c]
		running[c]++
	}
	// Walk LF from row 0, the rotation starting with the terminator: its
	// BWT symbol is T[n−2], so the text is recovered right to left with
	// the terminator itself emitted by the final step (the row whose
	// rotation starts at text position 0).
	out := make([]uint32, n)
	row := int32(0)
	for k := n - 2; k >= 0; k-- {
		c := bwt[row]
		out[k] = c
		row = counts[c] + occ[row]
	}
	out[n-1] = bwt[row]
	return out
}
