package suffix

import "testing"

// FuzzBWTRoundTrip checks Inverse(BWT(s)) == s for arbitrary
// terminated strings, and that Array always emits a permutation.
func FuzzBWTRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{5, 5, 5, 5, 5})
	f.Add([]byte{1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 5000 {
			t.Skip()
		}
		s := make([]uint32, len(raw)+1)
		maxSym := uint32(0)
		for i, b := range raw {
			s[i] = uint32(b) + 1
			if s[i] > maxSym {
				maxSym = s[i]
			}
		}
		s[len(raw)] = 0
		sigma := int(maxSym) + 1

		sa := Array(s, sigma)
		seen := make([]bool, len(s))
		for _, p := range sa {
			if p < 0 || int(p) >= len(s) || seen[p] {
				t.Fatalf("SA not a permutation at %d", p)
			}
			seen[p] = true
		}
		bwt := BWT(s, sa)
		back := Inverse(bwt, sigma)
		if len(back) != len(s) {
			t.Fatalf("round trip length %d != %d", len(back), len(s))
		}
		for i := range s {
			if back[i] != s[i] {
				t.Fatalf("round trip differs at %d", i)
			}
		}
	})
}
