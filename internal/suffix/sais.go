// Package suffix provides linear-time suffix array construction (the
// SA-IS algorithm of Nong, Zhang and Chan) for integer alphabets, and
// the Burrows–Wheeler transform built on top of it. These replace the
// sais.hxx / sdsl-lite components the paper's C++ implementation used.
package suffix

// Array computes the suffix array of s, whose symbols must lie in
// [0, sigma). A virtual sentinel smaller than every symbol is appended
// internally, so s itself needs no terminator. The result sa satisfies:
// the suffixes s[sa[0]:] < s[sa[1]:] < … in lexicographic order (with
// the shorter-is-smaller rule the virtual sentinel induces).
func Array(s []uint32, sigma int) []int32 {
	n := len(s)
	if n == 0 {
		return nil
	}
	// Shift symbols by +1 so 0 can serve as the unique sentinel.
	work := make([]int32, n+1)
	for i, c := range s {
		work[i] = int32(c) + 1
	}
	work[n] = 0
	sa := make([]int32, n+1)
	sais(work, sa, sigma+1)
	// sa[0] is the sentinel suffix; drop it.
	out := make([]int32, n)
	copy(out, sa[1:])
	return out
}

// sais computes the suffix array of s into sa. s must end with a unique
// smallest symbol (the sentinel) and have symbols in [0, sigma).
func sais(s []int32, sa []int32, sigma int) {
	n := len(s)
	if n == 1 {
		sa[0] = 0
		return
	}
	if n == 2 {
		// Sentinel is last and smallest.
		sa[0], sa[1] = 1, 0
		return
	}

	// Classify suffix types: isS[i] == true means suffix i is S-type.
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = s[i] < s[i+1] || (s[i] == s[i+1] && isS[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	counts := make([]int32, sigma)
	for _, c := range s {
		counts[c]++
	}
	heads := make([]int32, sigma)
	tails := make([]int32, sigma)
	resetHeads := func() {
		var sum int32
		for c := 0; c < sigma; c++ {
			heads[c] = sum
			sum += counts[c]
		}
	}
	resetTails := func() {
		var sum int32
		for c := 0; c < sigma; c++ {
			sum += counts[c]
			tails[c] = sum
		}
	}

	// induce completes sa from the LMS suffixes already placed at their
	// bucket tails (all other entries must be -1).
	induce := func() {
		resetHeads()
		for i := 0; i < n; i++ {
			j := sa[i]
			if j > 0 && !isS[j-1] {
				c := s[j-1]
				sa[heads[c]] = j - 1
				heads[c]++
			}
		}
		resetTails()
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j > 0 && isS[j-1] {
				c := s[j-1]
				tails[c]--
				sa[tails[c]] = j - 1
			}
		}
	}

	// Pass 1: sort LMS substrings by placing LMS positions at bucket
	// tails in text order, then inducing.
	for i := range sa {
		sa[i] = -1
	}
	resetTails()
	nLMS := 0
	for i := 1; i < n; i++ {
		if isLMS(i) {
			c := s[i]
			tails[c]--
			sa[tails[c]] = int32(i)
			nLMS++
		}
	}
	induce()

	// Compact the sorted LMS positions into the front of sa.
	sorted := make([]int32, 0, nLMS)
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sorted = append(sorted, sa[i])
		}
	}

	// Name LMS substrings; equal adjacent substrings share a name.
	names := make([]int32, n) // names[i] valid only at LMS positions
	name := int32(0)
	var prev int32 = -1
	for _, cur := range sorted {
		if prev >= 0 && !lmsEqual(s, isS, int(prev), int(cur)) {
			name++
		}
		names[cur] = name
		prev = cur
	}
	numNames := int(name) + 1

	// Build the reduced problem: LMS positions in text order.
	lmsPos := make([]int32, 0, nLMS)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			lmsPos = append(lmsPos, int32(i))
		}
	}
	reduced := make([]int32, nLMS)
	for i, p := range lmsPos {
		reduced[i] = names[p]
	}

	var lmsOrder []int32
	if numNames == nLMS {
		// All names distinct: order is determined directly.
		lmsOrder = make([]int32, nLMS)
		for i, r := range reduced {
			lmsOrder[r] = int32(i)
		}
	} else {
		// Recurse. reduced ends with the sentinel's LMS (position n-1),
		// whose name is 0 and unique, so it is a valid sentinel.
		sub := make([]int32, nLMS)
		sais(reduced, sub, numNames)
		lmsOrder = sub
	}

	// Pass 2: place LMS suffixes in their final relative order, induce.
	for i := range sa {
		sa[i] = -1
	}
	resetTails()
	for i := nLMS - 1; i >= 0; i-- {
		p := lmsPos[lmsOrder[i]]
		c := s[p]
		tails[c]--
		sa[tails[c]] = p
	}
	induce()
}

// lmsEqual reports whether the LMS substrings starting at i and j are
// identical (same symbols and same types up to and including the next
// LMS position).
func lmsEqual(s []int32, isS []bool, i, j int) bool {
	n := len(s)
	if i == n-1 || j == n-1 {
		return i == j
	}
	for k := 0; ; k++ {
		iLMS := i+k > 0 && isS[i+k] && !isS[i+k-1]
		jLMS := j+k > 0 && isS[j+k] && !isS[j+k-1]
		if k > 0 && iLMS && jLMS {
			return true
		}
		if iLMS != jLMS || s[i+k] != s[j+k] {
			return false
		}
		if i+k == n-1 || j+k == n-1 {
			return (i + k) == (j + k)
		}
	}
}
