package suffix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSA builds a suffix array by comparison sort, with the same
// shorter-is-smaller tie rule a virtual sentinel induces.
func naiveSA(s []uint32) []int32 {
	n := len(s)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		i, j := int(sa[a]), int(sa[b])
		for i < n && j < n {
			if s[i] != s[j] {
				return s[i] < s[j]
			}
			i++
			j++
		}
		return i == n && j < n
	})
	return sa
}

func randSeq(rng *rand.Rand, n, sigma int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(rng.Intn(sigma))
	}
	return s
}

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestArrayAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]uint32{
		{},
		{0},
		{5},
		{1, 1, 1, 1},
		{3, 2, 1, 0},
		{0, 1, 0, 1, 0},
		{1, 0, 1, 0, 0, 1, 0},
	}
	for _, s := range cases {
		got := Array(s, 8)
		want := naiveSA(s)
		if !eq(got, want) {
			t.Fatalf("s=%v: got %v want %v", s, got, want)
		}
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		sigma := 1 + rng.Intn(10)
		s := randSeq(rng, n, sigma)
		got := Array(s, sigma)
		want := naiveSA(s)
		if !eq(got, want) {
			t.Fatalf("trial %d (n=%d sigma=%d): SA mismatch\ns=%v\ngot  %v\nwant %v",
				trial, n, sigma, s, got, want)
		}
	}
}

func TestArrayLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(500)
		sigma := 1000 + rng.Intn(100000)
		s := randSeq(rng, n, sigma)
		if !eq(Array(s, sigma), naiveSA(s)) {
			t.Fatalf("trial %d: SA mismatch for large alphabet", trial)
		}
	}
}

func TestArrayQuick(t *testing.T) {
	f := func(raw []byte) bool {
		s := make([]uint32, len(raw))
		for i, b := range raw {
			s[i] = uint32(b % 4) // small alphabet stresses recursion
		}
		return eq(Array(s, 4), naiveSA(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 10000, 5)
	sa := Array(s, 5)
	seen := make([]bool, len(s))
	for _, p := range sa {
		if p < 0 || int(p) >= len(s) || seen[p] {
			t.Fatalf("SA is not a permutation at %d", p)
		}
		seen[p] = true
	}
}

// terminated returns s with a unique smallest terminator appended and
// all symbols shifted up by one, mimicking the trajectory string's '#'.
func terminated(s []uint32) ([]uint32, int) {
	out := make([]uint32, len(s)+1)
	maxSym := uint32(0)
	for i, c := range s {
		out[i] = c + 1
		if c+1 > maxSym {
			maxSym = c + 1
		}
	}
	out[len(s)] = 0
	return out, int(maxSym) + 1
}

func TestBWTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		raw := randSeq(rng, 1+rng.Intn(400), 1+rng.Intn(20))
		s, sigma := terminated(raw)
		bwt, _ := Transform(s, sigma)
		back := Inverse(bwt, sigma)
		if len(back) != len(s) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range s {
			if back[i] != s[i] {
				t.Fatalf("trial %d: Inverse(BWT(s)) differs at %d", trial, i)
			}
		}
	}
}

func TestBWTMatchesRotationSort(t *testing.T) {
	// Verify against an explicit sorted-rotations BWT (the paper's
	// Fig. 2 definition) for terminated strings.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		raw := randSeq(rng, 1+rng.Intn(100), 1+rng.Intn(6))
		s, sigma := terminated(raw)
		n := len(s)
		rot := make([]int, n)
		for i := range rot {
			rot[i] = i
		}
		sort.Slice(rot, func(a, b int) bool {
			i, j := rot[a], rot[b]
			for k := 0; k < n; k++ {
				ci, cj := s[(i+k)%n], s[(j+k)%n]
				if ci != cj {
					return ci < cj
				}
			}
			return false
		})
		want := make([]uint32, n)
		for k, r := range rot {
			want[k] = s[(r+n-1)%n]
		}
		got, _ := Transform(s, sigma)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: BWT differs from rotation-sort at %d", trial, i)
			}
		}
	}
}

func TestPaperExample(t *testing.T) {
	// The running example of the paper: T = FEBA$CBA$CB$DA$# with
	// # < $ < A < … < F must produce Tbwt = $AAABDBBCCE$$$F#  (Eq. 2).
	sym := map[byte]uint32{'#': 0, '$': 1, 'A': 2, 'B': 3, 'C': 4, 'D': 5, 'E': 6, 'F': 7}
	text := "FEBA$CBA$CB$DA$#"
	s := make([]uint32, len(text))
	for i := range text {
		s[i] = sym[text[i]]
	}
	bwt, sa := Transform(s, 8)
	wantBWT := "$AAABDBBCCE$$$F#"
	rev := map[uint32]byte{}
	for k, v := range sym {
		rev[v] = k
	}
	got := make([]byte, len(bwt))
	for i, c := range bwt {
		got[i] = rev[c]
	}
	if string(got) != wantBWT {
		t.Fatalf("BWT = %q, want %q", got, wantBWT)
	}
	// Suffix range of "BA" must be [9, 11) per Fig. 2.
	// Check directly on the SA: suffixes starting with B,A.
	lo, hi := -1, -1
	for i, p := range sa {
		if int(p)+1 < len(s) && s[p] == sym['B'] && s[p+1] == sym['A'] {
			if lo == -1 {
				lo = i
			}
			hi = i + 1
		}
	}
	if lo != 9 || hi != 11 {
		t.Fatalf("R(BA) = [%d,%d), want [9,11)", lo, hi)
	}
}

func BenchmarkArray1M(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	s := randSeq(rng, 1<<20, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Array(s, 1<<14)
	}
}
