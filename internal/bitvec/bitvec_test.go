package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a reference bit vector for cross-validation.
type naive struct{ bits []bool }

func (n *naive) rank1(i int) int {
	r := 0
	for j := 0; j < i; j++ {
		if n.bits[j] {
			r++
		}
	}
	return r
}

func (n *naive) select1(k int) int {
	for i, b := range n.bits {
		if b {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func (n *naive) select0(k int) int {
	for i, b := range n.bits {
		if !b {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func randomBits(rng *rand.Rand, n int, density float64) (*Builder, *naive) {
	b := NewBuilder(n)
	nv := &naive{bits: make([]bool, n)}
	for i := 0; i < n; i++ {
		bit := rng.Float64() < density
		b.PushBit(bit)
		nv.bits[i] = bit
	}
	return b, nv
}

func TestPlainAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 511, 512, 513, 4096, 10000} {
		for _, density := range []float64{0, 0.05, 0.5, 0.95, 1} {
			b, nv := randomBits(rng, n, density)
			p := b.Plain()
			if p.Len() != n {
				t.Fatalf("n=%d: Len=%d", n, p.Len())
			}
			for i := 0; i <= n; i++ {
				if got, want := p.Rank1(i), nv.rank1(i); got != want {
					t.Fatalf("n=%d d=%.2f: Rank1(%d)=%d want %d", n, density, i, got, want)
				}
			}
			for i := 0; i < n; i++ {
				if got, want := p.Get(i), nv.bits[i]; got != want {
					t.Fatalf("n=%d: Get(%d)=%v want %v", n, i, got, want)
				}
			}
		}
	}
}

func TestPlainSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 100, 1000, 5000} {
		b, nv := randomBits(rng, n, 0.3)
		p := b.Plain()
		ones := p.Ones()
		for k := 0; k < ones; k++ {
			if got, want := p.Select1(k), nv.select1(k); got != want {
				t.Fatalf("n=%d: Select1(%d)=%d want %d", n, k, got, want)
			}
		}
		if p.Select1(ones) != -1 {
			t.Fatalf("Select1 past end should be -1")
		}
		if p.Select1(-1) != -1 {
			t.Fatalf("Select1(-1) should be -1")
		}
		zeros := n - ones
		for k := 0; k < zeros; k++ {
			if got, want := p.Select0(k), nv.select0(k); got != want {
				t.Fatalf("n=%d: Select0(%d)=%d want %d", n, k, got, want)
			}
		}
		if p.Select0(zeros) != -1 {
			t.Fatalf("Select0 past end should be -1")
		}
	}
}

func TestPlainSelectRankInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, _ := randomBits(rng, 2048, 0.5)
	p := b.Plain()
	for k := 0; k < p.Ones(); k++ {
		pos := p.Select1(k)
		if p.Rank1(pos) != k {
			t.Fatalf("Rank1(Select1(%d))=%d", k, p.Rank1(pos))
		}
		if !p.Get(pos) {
			t.Fatalf("bit at Select1(%d)=%d is not set", k, pos)
		}
	}
}

func TestRRRAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, blockSize := range []int{15, 31, 63} {
		for _, n := range []int{0, 1, 14, 15, 16, 62, 63, 64, 65, 1000, 4097} {
			for _, density := range []float64{0, 0.1, 0.5, 0.9, 1} {
				b, nv := randomBits(rng, n, density)
				r := b.RRR(blockSize)
				if r.Len() != n {
					t.Fatalf("b=%d n=%d: Len=%d", blockSize, n, r.Len())
				}
				for i := 0; i <= n; i++ {
					if got, want := r.Rank1(i), nv.rank1(i); got != want {
						t.Fatalf("b=%d n=%d d=%.2f: Rank1(%d)=%d want %d",
							blockSize, n, density, i, got, want)
					}
				}
				for i := 0; i < n; i++ {
					if got, want := r.Get(i), nv.bits[i]; got != want {
						t.Fatalf("b=%d n=%d: Get(%d)=%v want %v", blockSize, n, i, got, want)
					}
				}
			}
		}
	}
}

func TestRRRRejectsBadBlockSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for block size 16")
		}
	}()
	NewRRR(nil, 0, 16)
}

func TestRankPanicsOutOfRange(t *testing.T) {
	b := NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.PushBit(true)
	}
	p := b.Plain()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Rank1(9)")
		}
	}()
	p.Rank1(9)
}

func TestRRRCompressesSparse(t *testing.T) {
	// A very sparse vector must compress well below its plain size.
	rng := rand.New(rand.NewSource(5))
	n := 1 << 16
	b, _ := randomBits(rng, n, 0.01)
	r := b.RRR(63)
	p := NewBuilderCopy(b).Plain()
	if r.SizeBits() >= p.SizeBits()/2 {
		t.Fatalf("RRR on 1%% density should be <1/2 plain size: rrr=%d plain=%d",
			r.SizeBits(), p.SizeBits())
	}
}

// NewBuilderCopy clones a builder so one bit stream can build both
// representations in tests.
func NewBuilderCopy(b *Builder) *Builder {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Builder{words: w, n: b.n}
}

func TestEnumRoundTripQuick(t *testing.T) {
	for _, b := range []int{15, 31, 63} {
		b := b
		f := func(raw uint64) bool {
			v := raw & (1<<uint(b) - 1)
			c := bits.OnesCount64(v)
			off := encodeOffset(v, b, c)
			if off >= binomial[b][c] {
				return false
			}
			return decodeOffset(off, b, c) == v
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("block size %d: %v", b, err)
		}
	}
}

func TestEnumOffsetsAreDense(t *testing.T) {
	// For b=15 enumerate all 2^15 blocks: every class-c offset must be a
	// bijection onto [0, C(15,c)).
	const b = 15
	seen := make(map[int]map[uint64]bool)
	for v := uint64(0); v < 1<<b; v++ {
		c := bits.OnesCount64(v)
		off := encodeOffset(v, b, c)
		if off >= binomial[b][c] {
			t.Fatalf("offset %d out of range for class %d", off, c)
		}
		if seen[c] == nil {
			seen[c] = make(map[uint64]bool)
		}
		if seen[c][off] {
			t.Fatalf("duplicate offset %d in class %d", off, c)
		}
		seen[c][off] = true
	}
	for c := 0; c <= b; c++ {
		if uint64(len(seen[c])) != binomial[b][c] {
			t.Fatalf("class %d: %d offsets, want %d", c, len(seen[c]), binomial[b][c])
		}
	}
}

func TestRankMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b, _ := randomBits(rng, 3000, 0.4)
	r := b.RRR(31)
	f := func(i uint16) bool {
		x := int(i) % r.Len()
		return r.Rank1(x) <= r.Rank1(x+1) && r.Rank1(x+1)-r.Rank1(x) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if r.Rank1(r.Len()) != r.Ones() {
		t.Fatalf("Rank1(n)=%d want Ones()=%d", r.Rank1(r.Len()), r.Ones())
	}
}

func TestRank0PlusRank1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b, _ := randomBits(rng, 1234, 0.5)
	r := b.RRR(15)
	p := NewBuilderCopy(b).Plain()
	for i := 0; i <= 1234; i++ {
		if r.Rank0(i)+r.Rank1(i) != i {
			t.Fatalf("RRR: Rank0(%d)+Rank1(%d) != %d", i, i, i)
		}
		if p.Rank0(i)+p.Rank1(i) != i {
			t.Fatalf("Plain: Rank0(%d)+Rank1(%d) != %d", i, i, i)
		}
	}
}

func TestEmptyVectors(t *testing.T) {
	b := NewBuilder(0)
	p := b.Plain()
	r := NewBuilderCopy(b).RRR(63)
	if p.Len() != 0 || r.Len() != 0 {
		t.Fatal("empty vectors should have length 0")
	}
	if p.Rank1(0) != 0 || r.Rank1(0) != 0 {
		t.Fatal("Rank1(0) on empty should be 0")
	}
	if p.Select1(0) != -1 {
		t.Fatal("Select1 on empty should be -1")
	}
}

func BenchmarkPlainRank(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	bl, _ := randomBits(rng, 1<<20, 0.5)
	p := bl.Plain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rank1((i * 7919) % p.Len())
	}
}

func BenchmarkRRRRank(b *testing.B) {
	for _, bs := range []int{15, 31, 63} {
		b.Run(map[int]string{15: "b15", 31: "b31", 63: "b63"}[bs], func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			bl, _ := randomBits(rng, 1<<20, 0.5)
			r := bl.RRR(bs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Rank1((i * 7919) % r.Len())
			}
		})
	}
}
