package bitvec

import (
	"math/rand"
	"testing"

	"cinct/internal/flat"
)

func buildBits(n int, p float64, rng *rand.Rand) *Builder {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.PushBit(rng.Float64() < p)
	}
	return b
}

func checkVectorEqual(t *testing.T, want, got Vector) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Get(i) != want.Get(i) {
			t.Fatalf("Get(%d) = %v, want %v", i, got.Get(i), want.Get(i))
		}
		if got.Rank1(i) != want.Rank1(i) {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got.Rank1(i), want.Rank1(i))
		}
		wb, wr := want.AccessRank1(i)
		gb, gr := got.AccessRank1(i)
		if wb != gb || wr != gr {
			t.Fatalf("AccessRank1(%d) = (%v,%d), want (%v,%d)", i, gb, gr, wb, wr)
		}
	}
	if got.Rank1(want.Len()) != want.Rank1(want.Len()) {
		t.Fatalf("full Rank1 mismatch")
	}
}

func TestFlatPlainRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 63, 64, 65, 512, 513, 4000} {
		orig := buildBits(n, 0.3, rng).Plain()
		w := flat.NewWriter()
		orig.AppendFlat(w)
		c := flat.NewCursor(w.Words())
		view, err := ViewPlain(c)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c.Remaining() != 0 {
			t.Fatalf("n=%d: %d words left over", n, c.Remaining())
		}
		checkVectorEqual(t, orig, view)
		for k := 1; k <= orig.Ones(); k++ {
			if view.Select1(k) != orig.Select1(k) {
				t.Fatalf("n=%d: Select1(%d) mismatch", n, k)
			}
		}
	}
}

func TestFlatPackedIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []uint{1, 7, 33, 64} {
		vals := make([]uint64, 300)
		for i := range vals {
			vals[i] = rng.Uint64() & (^uint64(0) >> (64 - width))
		}
		orig := PackIntsWidth(vals, width)
		w := flat.NewWriter()
		orig.AppendFlat(w)
		view, err := ViewPackedInts(flat.NewCursor(w.Words()))
		if err != nil {
			t.Fatalf("width=%d: %v", width, err)
		}
		if view.Len() != orig.Len() {
			t.Fatalf("width=%d: Len mismatch", width)
		}
		for i := 0; i < orig.Len(); i++ {
			if view.Get(i) != orig.Get(i) {
				t.Fatalf("width=%d: Get(%d) = %d, want %d", width, i, view.Get(i), orig.Get(i))
			}
		}
	}
}

func TestFlatRRRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, bs := range []int{15, 31, 63} {
		for _, n := range []int{0, 1, bs, bs + 1, 10 * bs, 3000} {
			orig := buildBits(n, 0.15, rng).RRR(bs)
			w := flat.NewWriter()
			orig.AppendFlat(w)
			c := flat.NewCursor(w.Words())
			view, err := ViewRRR(c)
			if err != nil {
				t.Fatalf("bs=%d n=%d: %v", bs, n, err)
			}
			if c.Remaining() != 0 {
				t.Fatalf("bs=%d n=%d: %d words left over", bs, n, c.Remaining())
			}
			checkVectorEqual(t, orig, view)
		}
	}
}

func TestFlatVectorTagged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := buildBits(777, 0.4, rng)
	for _, orig := range []Vector{b.Plain(), b.RRR(63)} {
		w := flat.NewWriter()
		AppendVector(w, orig)
		view, err := ViewVector(flat.NewCursor(w.Words()))
		if err != nil {
			t.Fatal(err)
		}
		checkVectorEqual(t, orig, view)
	}
}

// Perturbing any single word of a flat vector must produce a typed
// error or a still-in-bounds (possibly wrong) structure — never an
// out-of-range access. This is the memory-safety contract mmap'd
// views rely on.
func TestFlatVectorCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := buildBits(900, 0.2, rng)
	for _, orig := range []Vector{b.Plain(), b.RRR(31)} {
		w := flat.NewWriter()
		AppendVector(w, orig)
		base := w.Words()
		for i := range base {
			for _, delta := range []uint64{1, ^uint64(0), 1 << 40} {
				mut := append([]uint64(nil), base...)
				mut[i] += delta
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("word %d +%#x: panic: %v", i, delta, r)
						}
					}()
					v, err := ViewVector(flat.NewCursor(mut))
					if err != nil {
						return
					}
					for j := 0; j < v.Len(); j += 37 {
						v.Get(j)
						v.Rank1(j)
					}
					v.Rank1(v.Len())
				}()
			}
		}
	}
}
