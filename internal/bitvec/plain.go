package bitvec

import (
	"fmt"
	"math/bits"
)

// Plain is an uncompressed bit vector with a one-level rank directory:
// one 32-bit cumulative count per 512-bit block. Rank scans at most
// eight words after the directory lookup, which is effectively O(1).
type Plain struct {
	words  []uint64
	n      int
	blocks []uint32 // cumulative rank1 at the start of each 512-bit block
	ones   int
}

const plainBlockWords = 8 // 512 bits per rank block

// NewPlain wraps the given words (little-endian bit order within each
// word: bit i of the vector is words[i/64]>>(i%64)&1) as a rank-indexed
// vector of n bits. The words slice is retained, not copied; bits at
// positions >= n are ignored by construction (they must be zero in the
// final partial word for SizeBits accounting to be exact, which Builder
// guarantees).
func NewPlain(words []uint64, n int) *Plain {
	need := (n + 63) / 64
	if len(words) < need {
		w := make([]uint64, need)
		copy(w, words)
		words = w
	}
	nb := (need + plainBlockWords - 1) / plainBlockWords
	blocks := make([]uint32, nb+1)
	cum := 0
	for b := 0; b < nb; b++ {
		blocks[b] = uint32(cum)
		end := (b + 1) * plainBlockWords
		if end > need {
			end = need
		}
		for w := b * plainBlockWords; w < end; w++ {
			cum += bits.OnesCount64(words[w])
		}
	}
	blocks[nb] = uint32(cum)
	return &Plain{words: words[:need], n: n, blocks: blocks, ones: cum}
}

// Len returns the number of bits stored.
func (p *Plain) Len() int { return p.n }

// Ones returns the total number of set bits.
func (p *Plain) Ones() int { return p.ones }

// Get reports whether bit i is set.
func (p *Plain) Get(i int) bool {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, p.n))
	}
	return p.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Rank1 returns the number of set bits in [0, i).
func (p *Plain) Rank1(i int) int {
	if i < 0 || i > p.n {
		panic(fmt.Sprintf("bitvec: Rank1(%d) out of range [0,%d]", i, p.n))
	}
	block := i >> 9 // /512
	r := int(p.blocks[block])
	w := block * plainBlockWords
	last := i >> 6
	for ; w < last; w++ {
		r += bits.OnesCount64(p.words[w])
	}
	if rem := uint(i) & 63; rem != 0 {
		r += bits.OnesCount64(p.words[last] & (1<<rem - 1))
	}
	return r
}

// Rank0 returns the number of zero bits in [0, i).
func (p *Plain) Rank0(i int) int { return i - p.Rank1(i) }

// AccessRank1 returns bit i together with Rank1(i) in one lookup — the
// combined operation wavelet-tree access descends on.
func (p *Plain) AccessRank1(i int) (bool, int) {
	return p.Get(i), p.Rank1(i)
}

// Select1 returns the position of the k-th (0-based) set bit, or -1 if
// fewer than k+1 bits are set. It binary-searches the rank directory and
// then scans within one block.
func (p *Plain) Select1(k int) int {
	if k < 0 || k >= p.ones {
		return -1
	}
	// Binary search for the block whose cumulative count exceeds k.
	lo, hi := 0, len(p.blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(p.blocks[mid]) <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(p.blocks[lo])
	for w := lo * plainBlockWords; w < len(p.words); w++ {
		c := bits.OnesCount64(p.words[w])
		if rem < c {
			return w*64 + selectWord(p.words[w], rem)
		}
		rem -= c
	}
	return -1
}

// Select0 returns the position of the k-th (0-based) zero bit, or -1.
func (p *Plain) Select0(k int) int {
	if k < 0 || k >= p.n-p.ones {
		return -1
	}
	lo, hi := 0, len(p.blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*512-int(p.blocks[mid]) <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - (lo*512 - int(p.blocks[lo]))
	for w := lo * plainBlockWords; w < len(p.words); w++ {
		inv := ^p.words[w]
		if w == len(p.words)-1 && p.n&63 != 0 {
			inv &= 1<<uint(p.n&63) - 1
		}
		c := bits.OnesCount64(inv)
		if rem < c {
			return w*64 + selectWord(inv, rem)
		}
		rem -= c
	}
	return -1
}

// selectWord returns the position of the k-th (0-based) set bit in w.
func selectWord(w uint64, k int) int {
	for i := 0; i < k; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// SizeBits returns the storage footprint in bits: the raw words plus the
// rank directory.
func (p *Plain) SizeBits() int {
	return len(p.words)*64 + len(p.blocks)*32
}
