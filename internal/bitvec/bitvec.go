// Package bitvec provides succinct bit vectors with constant-time rank
// support: a plain (uncompressed) vector with a two-level rank directory,
// and a compressed vector implementing the practical RRR scheme of
// Navarro and Providel ("Fast, small, simple rank/select on bitmaps",
// SEA 2012), which is the representation CiNCT stores its wavelet-tree
// levels in.
package bitvec

// Vector is the read interface shared by plain and RRR bit vectors.
//
// All implementations answer Rank1(i) — the number of set bits in the
// prefix [0, i) — in time independent of the vector length (O(1) for the
// plain vector, O(b) for RRR with block size b).
type Vector interface {
	// Len returns the number of bits stored.
	Len() int
	// Get reports whether bit i is set. It panics if i is out of range.
	Get(i int) bool
	// Rank1 returns the number of set bits in [0, i). i may equal Len().
	Rank1(i int) int
	// Rank0 returns the number of zero bits in [0, i).
	Rank0(i int) int
	// Ones returns the total number of set bits, Rank1(Len()), from a
	// stored field — O(1) for every implementation.
	Ones() int
	// AccessRank1 returns (Get(i), Rank1(i)) in one lookup — the
	// combined operation wavelet-structure access descends on.
	AccessRank1(i int) (bool, int)
	// SizeBits returns the storage footprint of the structure in bits,
	// including rank directories. Used by the size experiments.
	SizeBits() int
}

// Builder accumulates bits one at a time and can emit either a plain or
// an RRR-compressed vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a Builder with capacity for sizeHint bits.
func NewBuilder(sizeHint int) *Builder {
	return &Builder{words: make([]uint64, 0, (sizeHint+63)/64)}
}

// PushBit appends one bit.
func (b *Builder) PushBit(bit bool) {
	w := b.n >> 6
	if w == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[w] |= 1 << uint(b.n&63)
	}
	b.n++
}

// Len returns the number of bits pushed so far.
func (b *Builder) Len() int { return b.n }

// Plain builds an uncompressed rank-indexed vector from the pushed bits.
func (b *Builder) Plain() *Plain { return NewPlain(b.words, b.n) }

// RRR builds an RRR-compressed vector with the given block size
// (must be one of 15, 31, 63) from the pushed bits.
func (b *Builder) RRR(blockSize int) *RRR { return NewRRR(b.words, b.n, blockSize) }
