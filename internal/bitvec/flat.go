package bitvec

import (
	"fmt"
	"math/bits"

	"cinct/internal/flat"
)

// Flat (v3) forms. AppendFlat writes a structure into a word stream;
// the View constructors wrap the stream's sub-slices in place — no
// copies, no decode — validating every shape invariant the query
// methods index by, so a corrupt stream fails the view instead of
// faulting a later Rank or Get. Content-level corruption (say, a rank
// directory that disagrees with the words) yields wrong answers, not
// out-of-bounds access: every index computed at query time is bounded
// by the shapes checked here.

// Tags for the kind-dispatched Vector stream.
const (
	flatPlain = 0
	flatRRR   = 1
)

// AppendFlat writes the vector's words and rank directory.
func (p *Plain) AppendFlat(w *flat.Writer) {
	w.U64(uint64(p.n))
	w.U64(uint64(p.ones))
	w.U64s(p.words)
	w.U32s(p.blocks)
}

// ViewPlain wraps a flat Plain in place.
func ViewPlain(c *flat.Cursor) (*Plain, error) {
	n := c.Int()
	ones := c.Int()
	words := c.U64s()
	blocks := c.U32s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	need := (n + 63) / 64
	nb := (need + plainBlockWords - 1) / plainBlockWords
	if ones > n || len(words) != need || len(blocks) != nb+1 {
		return nil, fmt.Errorf("%w: plain bitvec shape (n=%d ones=%d words=%d blocks=%d)",
			flat.ErrCorrupt, n, ones, len(words), len(blocks))
	}
	return &Plain{words: words, n: n, blocks: blocks, ones: ones}, nil
}

// AppendFlat writes the packed array.
func (p *PackedInts) AppendFlat(w *flat.Writer) {
	w.U64(uint64(p.n))
	w.U64(uint64(p.width))
	w.U64s(p.words)
}

// ViewPackedInts wraps a flat PackedInts in place.
func ViewPackedInts(c *flat.Cursor) (*PackedInts, error) {
	n := c.Int()
	width := c.Int()
	words := c.U64s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if width < 1 || width > 64 || n > (1<<56) ||
		len(words) != (n*width+63)/64 {
		return nil, fmt.Errorf("%w: packed ints shape (n=%d width=%d words=%d)",
			flat.ErrCorrupt, n, width, len(words))
	}
	return &PackedInts{words: words, width: uint(width), n: n}, nil
}

// canonicalWords returns the packed field array at its canonical flat
// length: ceil(lenBits/64) data words plus one guard word, the
// invariant the unguarded word-pair reads in RRR's class scan rely
// on. The builder's append-grown slice may be shorter or longer.
func (p *packed) canonicalWords() []uint64 {
	need := (p.lenBits+63)/64 + 1
	if len(p.words) == need {
		return p.words
	}
	out := make([]uint64, need)
	copy(out, p.words)
	return out
}

// AppendFlat writes the RRR vector: classes, offsets and the sampled
// directory.
func (r *RRR) AppendFlat(w *flat.Writer) {
	w.U64(uint64(r.n))
	w.U64(uint64(r.blockSize))
	w.U64(uint64(r.ones))
	w.U64(uint64(r.classes.lenBits))
	w.U64s(r.classes.canonicalWords())
	w.U64(uint64(r.offsets.lenBits))
	w.U64s(r.offsets.canonicalWords())
	w.U32s(r.sampleRank)
	w.U64s(r.sampleOff)
}

// ViewRRR wraps a flat RRR in place. Validation is O(1) — shape
// arithmetic plus the directory's endpoints — so opening a mapped
// container never walks the superblock directory. Interior directory
// corruption therefore survives the view: a lying sample either reads
// inside the guarded offset stream (wrong answer) or trips the
// per-read guard in packed.read (a panic the query layer contains as
// ErrCorruptIndex).
func ViewRRR(c *flat.Cursor) (*RRR, error) {
	n := c.Int()
	blockSize := c.Int()
	ones := c.Int()
	classLen := c.Int()
	classWords := c.U64s()
	offLen := c.Int()
	offWords := c.U64s()
	sampleRank := c.U32s()
	sampleOff := c.U64s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	switch blockSize {
	case 15, 31, 63:
	default:
		return nil, fmt.Errorf("%w: RRR block size %d", flat.ErrCorrupt, blockSize)
	}
	classBits := uint(bits.Len(uint(blockSize)))
	nBlocks := (n + blockSize - 1) / blockSize
	nSuper := (nBlocks + superblockFactor - 1) / superblockFactor
	if ones > n || classLen != nBlocks*int(classBits) ||
		len(classWords) != (classLen+63)/64+1 ||
		len(offWords) != (offLen+63)/64+1 ||
		len(sampleRank) != nSuper+1 || len(sampleOff) != nSuper+1 {
		return nil, fmt.Errorf("%w: RRR shape (n=%d blocks=%d)", flat.ErrCorrupt, n, nBlocks)
	}
	if sampleRank[0] != 0 || sampleOff[0] != 0 ||
		sampleOff[nSuper] > uint64(offLen) || int(sampleRank[nSuper]) != ones {
		return nil, fmt.Errorf("%w: RRR sample directory endpoints (rank %d..%d off %d..%d)",
			flat.ErrCorrupt, sampleRank[0], sampleRank[nSuper], sampleOff[0], sampleOff[nSuper])
	}
	return &RRR{
		n:          n,
		blockSize:  blockSize,
		classBits:  classBits,
		ones:       ones,
		widths:     offsetWidths[blockSize],
		classes:    packed{words: classWords, lenBits: classLen},
		offsets:    packed{words: offWords, lenBits: offLen},
		sampleRank: sampleRank,
		sampleOff:  sampleOff,
	}, nil
}

// AppendVector writes any supported Vector behind a kind tag.
func AppendVector(w *flat.Writer, v Vector) {
	switch bv := v.(type) {
	case *Plain:
		w.U64(flatPlain)
		bv.AppendFlat(w)
	case *RRR:
		w.U64(flatRRR)
		bv.AppendFlat(w)
	default:
		panic(fmt.Sprintf("bitvec: no flat form for %T", v))
	}
}

// ViewVector wraps a kind-tagged Vector in place.
func ViewVector(c *flat.Cursor) (Vector, error) {
	switch kind := c.U64(); kind {
	case flatPlain:
		return ViewPlain(c)
	case flatRRR:
		return ViewRRR(c)
	default:
		if err := c.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unknown bit-vector kind %d", flat.ErrCorrupt, kind)
	}
}
