package bitvec

import (
	"fmt"
	"math/bits"
)

// PackedInts is an immutable fixed-width packed integer array: n values
// of `width` bits each, width ≤ 64. It backs the C array and the
// compacted ET-graph, whose naive Go representations (64-bit slices)
// would otherwise dominate the index size on large alphabets.
type PackedInts struct {
	words []uint64
	width uint
	n     int
}

// PackInts packs vals at the minimum width that fits the largest value
// (at least 1 bit).
func PackInts(vals []uint64) *PackedInts {
	var maxV uint64
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	width := uint(bits.Len64(maxV))
	if width == 0 {
		width = 1
	}
	return PackIntsWidth(vals, width)
}

// PackIntsWidth packs vals at an explicit width; values must fit.
func PackIntsWidth(vals []uint64, width uint) *PackedInts {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: invalid pack width %d", width))
	}
	p := &PackedInts{
		words: make([]uint64, (len(vals)*int(width)+63)/64),
		width: width,
		n:     len(vals),
	}
	for i, v := range vals {
		if width < 64 && v >= 1<<width {
			panic(fmt.Sprintf("bitvec: value %d does not fit in %d bits", v, width))
		}
		pos := i * int(width)
		w := pos >> 6
		sh := uint(pos & 63)
		p.words[w] |= v << sh
		if sh+width > 64 {
			p.words[w+1] |= v >> (64 - sh)
		}
	}
	return p
}

// Len returns the element count.
func (p *PackedInts) Len() int { return p.n }

// Width returns the per-element width in bits.
func (p *PackedInts) Width() uint { return p.width }

// Get returns element i.
func (p *PackedInts) Get(i int) uint64 {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bitvec: PackedInts.Get(%d) out of range [0,%d)", i, p.n))
	}
	pos := i * int(p.width)
	w := pos >> 6
	sh := uint(pos & 63)
	v := p.words[w] >> sh
	if sh+p.width > 64 {
		v |= p.words[w+1] << (64 - sh)
	}
	if p.width == 64 {
		return v
	}
	return v & (1<<p.width - 1)
}

// SizeBits returns the storage footprint.
func (p *PackedInts) SizeBits() int { return len(p.words)*64 + 64 }

// ZigZag maps a signed value to unsigned so small magnitudes pack
// small.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
