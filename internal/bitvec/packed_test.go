package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []uint{1, 3, 7, 17, 31, 33, 63, 64} {
		n := 500
		vals := make([]uint64, n)
		for i := range vals {
			if width == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<width - 1)
			}
		}
		p := PackIntsWidth(vals, width)
		if p.Len() != n || p.Width() != width {
			t.Fatalf("width %d: bad header", width)
		}
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("width %d: Get(%d) = %d, want %d", width, i, got, want)
			}
		}
	}
}

func TestPackIntsChoosesMinimalWidth(t *testing.T) {
	p := PackInts([]uint64{0, 5, 7})
	if p.Width() != 3 {
		t.Fatalf("width = %d, want 3", p.Width())
	}
	p = PackInts([]uint64{0, 0, 0})
	if p.Width() != 1 {
		t.Fatalf("all-zero width = %d, want 1", p.Width())
	}
}

func TestPackIntsRejectsOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing value should panic")
		}
	}()
	PackIntsWidth([]uint64{8}, 3)
}

func TestPackedGetPanicsOutOfRange(t *testing.T) {
	p := PackInts([]uint64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Get(2) should panic")
		}
	}()
	p.Get(2)
}

func TestZigZagQuick(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes map to small codes.
	for _, c := range []struct {
		v int64
		u uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}} {
		if ZigZag(c.v) != c.u {
			t.Fatalf("ZigZag(%d) = %d, want %d", c.v, ZigZag(c.v), c.u)
		}
	}
}

func TestPackedSizeBits(t *testing.T) {
	p := PackIntsWidth(make([]uint64, 1000), 7)
	// 7000 bits of payload → 110 words → 7040 bits + header.
	if p.SizeBits() < 7000 || p.SizeBits() > 7300 {
		t.Fatalf("SizeBits = %d", p.SizeBits())
	}
}
