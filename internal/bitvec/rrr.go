package bitvec

import (
	"fmt"
	"math/bits"
)

// RRR is a compressed bit vector following the practical RRR layout of
// Navarro and Providel (SEA 2012). The vector is split into blocks of b
// bits (b in {15, 31, 63}); each block is stored as a fixed-width class
// (its popcount, ceil(lg(b+1)) bits) plus a variable-width enumerative
// offset (ceil(lg C(b,class)) bits) identifying the block among all
// blocks of that class. A sampled directory every superblockFactor
// blocks stores the cumulative rank and the cumulative offset bit
// position, so Rank1 decodes at most superblockFactor class fields plus
// one offset: O(b) time, independent of the vector length.
//
// This is the structure the paper parameterizes by b: larger b gives
// better compression (smaller per-bit overhead h(b) = lg(b+1)/b) but a
// slower in-block rank.
type RRR struct {
	n         int
	blockSize int // b: 15, 31 or 63
	classBits uint
	ones      int
	widths    []uint // widths[c] = offset width of class c (cached table)

	classes packed // one class per block, classBits wide
	offsets packed // variable-width offsets, back to back

	// Sampled directory, one entry per superblock of superblockFactor blocks.
	sampleRank []uint32 // cumulative rank1 at superblock start
	sampleOff  []uint64 // cumulative offset bit position at superblock start
}

const superblockFactor = 32

// NewRRR compresses n bits taken from words (same layout as NewPlain)
// with the given block size, which must be 15, 31 or 63.
func NewRRR(words []uint64, n int, blockSize int) *RRR {
	switch blockSize {
	case 15, 31, 63:
	default:
		panic(fmt.Sprintf("bitvec: RRR block size must be 15, 31 or 63; got %d", blockSize))
	}
	classBits := uint(bits.Len(uint(blockSize))) // lg(b+1) for b = 2^k - 1
	nBlocks := (n + blockSize - 1) / blockSize
	r := &RRR{
		n:         n,
		blockSize: blockSize,
		classBits: classBits,
		widths:    offsetWidths[blockSize],
	}
	r.classes.grow(nBlocks * int(classBits))
	nSuper := (nBlocks + superblockFactor - 1) / superblockFactor
	r.sampleRank = make([]uint32, nSuper+1)
	r.sampleOff = make([]uint64, nSuper+1)

	cumRank := 0
	for blk := 0; blk < nBlocks; blk++ {
		if blk%superblockFactor == 0 {
			sb := blk / superblockFactor
			r.sampleRank[sb] = uint32(cumRank)
			r.sampleOff[sb] = uint64(r.offsets.lenBits)
		}
		lo := blk * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		v := extractBits(words, lo, hi-lo)
		c := bits.OnesCount64(v)
		r.classes.append(uint64(c), classBits)
		w := offsetWidth(blockSize, c)
		if w > 0 {
			r.offsets.append(encodeOffset(v, blockSize, c), w)
		}
		cumRank += c
	}
	r.sampleRank[nSuper] = uint32(cumRank)
	r.sampleOff[nSuper] = uint64(r.offsets.lenBits)
	r.ones = cumRank
	return r
}

// Len returns the number of bits stored.
func (r *RRR) Len() int { return r.n }

// Ones returns the total number of set bits.
func (r *RRR) Ones() int { return r.ones }

// BlockSize returns the RRR block parameter b.
func (r *RRR) BlockSize() int { return r.blockSize }

// Rank1 returns the number of set bits in [0, i).
func (r *RRR) Rank1(i int) int {
	if i < 0 || i > r.n {
		panic(fmt.Sprintf("bitvec: Rank1(%d) out of range [0,%d]", i, r.n))
	}
	if i == 0 {
		return 0
	}
	blk := i / r.blockSize
	rem := i % r.blockSize
	sb := blk / superblockFactor
	rank := int(r.sampleRank[sb])
	offPos := int(r.sampleOff[sb])
	cb := int(r.classBits)
	mask := uint64(1)<<r.classBits - 1
	pos := sb * superblockFactor * cb
	words := r.classes.words
	for j := sb * superblockFactor; j < blk; j++ {
		w := pos >> 6
		sh := uint(pos & 63)
		v := words[w] >> sh
		if sh+r.classBits > 64 {
			v |= words[w+1] << (64 - sh)
		}
		c := int(v & mask)
		pos += cb
		rank += c
		offPos += int(r.widths[c])
	}
	if rem > 0 {
		c := int(r.classes.read(blk*cb, r.classBits))
		off := r.offsets.read(offPos, r.widths[c])
		rank += rankOffset(off, r.blockSize, c, rem)
	}
	return rank
}

// Rank0 returns the number of zero bits in [0, i).
func (r *RRR) Rank0(i int) int { return i - r.Rank1(i) }

// Get reports whether bit i is set.
func (r *RRR) Get(i int) bool {
	bit, _ := r.AccessRank1(i)
	return bit
}

// AccessRank1 returns bit i together with Rank1(i) in a single block
// decode — one third the cost of separate Get and Rank1 calls, and the
// operation Algorithm 4's extraction loop lives on.
func (r *RRR) AccessRank1(i int) (bool, int) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("bitvec: AccessRank1(%d) out of range [0,%d)", i, r.n))
	}
	blk := i / r.blockSize
	rem := i % r.blockSize
	sb := blk / superblockFactor
	rank := int(r.sampleRank[sb])
	offPos := int(r.sampleOff[sb])
	cb := int(r.classBits)
	mask := uint64(1)<<r.classBits - 1
	pos := sb * superblockFactor * cb
	words := r.classes.words
	for j := sb * superblockFactor; j < blk; j++ {
		w := pos >> 6
		sh := uint(pos & 63)
		v := words[w] >> sh
		if sh+r.classBits > 64 {
			v |= words[w+1] << (64 - sh)
		}
		c := int(v & mask)
		pos += cb
		rank += c
		offPos += int(r.widths[c])
	}
	c := int(r.classes.read(blk*cb, r.classBits))
	off := r.offsets.read(offPos, r.widths[c])
	inRank, bit := accessRankOffset(off, r.blockSize, c, rem)
	return bit, rank + inRank
}

// SizeBits returns the storage footprint in bits: classes, offsets and
// the sampled directory.
func (r *RRR) SizeBits() int {
	return r.classes.lenBits + r.offsets.lenBits +
		len(r.sampleRank)*32 + len(r.sampleOff)*64
}

// extractBits reads width bits (width <= 63) starting at bit position
// pos from the word array.
func extractBits(words []uint64, pos, width int) uint64 {
	if width == 0 {
		return 0
	}
	w := pos >> 6
	sh := uint(pos & 63)
	v := words[w] >> sh
	if sh+uint(width) > 64 && w+1 < len(words) {
		v |= words[w+1] << (64 - sh)
	}
	return v & (1<<uint(width) - 1)
}
