package bitvec

import (
	"math/rand"
	"testing"
)

// TestHotPathAllocs asserts that the per-query primitives — Rank1,
// AccessRank1, Get and (for Plain) Select1 — allocate nothing. These
// run millions of times per search; a single allocation per op would
// dominate the mmap-serving latency profile, so CI guards the zero.
func TestHotPathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	b := NewBuilder(100_000)
	ones := 0
	for i := 0; i < 100_000; i++ {
		bit := rng.Intn(4) == 0
		b.PushBit(bit)
		if bit {
			ones++
		}
	}
	plain := b.Plain()
	vectors := []struct {
		name string
		v    Vector
	}{
		{"Plain", plain},
		{"RRR15", b.RRR(15)},
		{"RRR63", b.RRR(63)},
	}
	var sink int
	var sinkBit bool
	for _, tc := range vectors {
		v := tc.v
		n := v.Len()
		if got := testing.AllocsPerRun(200, func() {
			sink += v.Rank1(n / 2)
			sink += v.Rank1(n)
		}); got != 0 {
			t.Errorf("%s.Rank1: %v allocs/op, want 0", tc.name, got)
		}
		if got := testing.AllocsPerRun(200, func() {
			sinkBit = v.Get(n / 3)
		}); got != 0 {
			t.Errorf("%s.Get: %v allocs/op, want 0", tc.name, got)
		}
		if got := testing.AllocsPerRun(200, func() {
			b, r := v.AccessRank1(n - 1)
			sinkBit = b
			sink += r
		}); got != 0 {
			t.Errorf("%s.AccessRank1: %v allocs/op, want 0", tc.name, got)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		sink += int(plain.Select1(ones / 2))
	}); got != 0 {
		t.Errorf("Plain.Select1: %v allocs/op, want 0", got)
	}
	_ = sink
	_ = sinkBit
}
