package bitvec

import "math/bits"

// Enumerative (combinatorial number system) coding of fixed-popcount
// blocks, used by the RRR offsets. A block of b bits with c ones is
// identified by an integer in [0, C(b,c)); encoding walks the bit
// positions from LSB to MSB, counting how many lexicographically
// smaller same-class blocks exist.

// binomial[n][k] = C(n, k) for n, k <= 63. C(63,31) < 2^63 so every
// entry fits in a uint64 without overflow.
var binomial [64][64]uint64

// offsetWidths[b][c] = ceil(lg C(b,c)) precomputed for the three legal
// block sizes.
var offsetWidths map[int][]uint

func init() {
	for n := 0; n < 64; n++ {
		binomial[n][0] = 1
		for k := 1; k <= n; k++ {
			binomial[n][k] = binomial[n-1][k-1]
			if k < n {
				binomial[n][k] += binomial[n-1][k]
			}
		}
	}
	offsetWidths = make(map[int][]uint, 3)
	for _, b := range []int{15, 31, 63} {
		ws := make([]uint, b+1)
		for c := 0; c <= b; c++ {
			if binomial[b][c] <= 1 {
				ws[c] = 0
			} else {
				ws[c] = uint(bits.Len64(binomial[b][c] - 1))
			}
		}
		offsetWidths[b] = ws
	}
}

// offsetWidth returns the number of bits needed to store the offset of
// a block of size b and class c.
func offsetWidth(b, c int) uint { return offsetWidths[b][c] }

// encodeOffset maps a b-bit block v with popcount c to its index in
// [0, C(b,c)). Bit positions are scanned from position 0 (LSB) upward;
// at each position, blocks with a zero there precede blocks with a one.
func encodeOffset(v uint64, b, c int) uint64 {
	var off uint64
	ones := c
	for pos := 0; pos < b && ones > 0; pos++ {
		rem := b - pos - 1 // positions after pos
		if v>>uint(pos)&1 == 1 {
			// All same-class blocks with a 0 at pos put their `ones`
			// ones in the remaining rem positions.
			off += binomial[rem][ones]
			ones--
		}
	}
	return off
}

// rankOffset counts the set bits among the first rem positions of the
// block encoded by (off, b, c), decoding only as far as needed: it
// stops at position rem or as soon as all c ones are placed. This is
// the hot path of RRR.Rank1.
func rankOffset(off uint64, b, c, rem int) int {
	if c == 0 {
		return 0
	}
	if c == b {
		return rem
	}
	ones := c
	rank := 0
	for pos := 0; pos < rem; pos++ {
		zc := binomial[b-pos-1][ones]
		if off >= zc {
			rank++
			off -= zc
			ones--
			if ones == 0 {
				break
			}
		}
	}
	return rank
}

// accessRankOffset returns (rank of ones before position rem, bit at
// rem) for the block encoded by (off, b, c), in one decode pass.
func accessRankOffset(off uint64, b, c, rem int) (int, bool) {
	if c == 0 {
		return 0, false
	}
	if c == b {
		return rem, true
	}
	ones := c
	rank := 0
	for pos := 0; pos <= rem; pos++ {
		if ones == 0 {
			return rank, false
		}
		zc := binomial[b-pos-1][ones]
		one := off >= zc
		if pos == rem {
			return rank, one
		}
		if one {
			rank++
			off -= zc
			ones--
		}
	}
	return rank, false // unreachable
}

// decodeOffset is the inverse of encodeOffset.
func decodeOffset(off uint64, b, c int) uint64 {
	var v uint64
	ones := c
	for pos := 0; pos < b && ones > 0; pos++ {
		rem := b - pos - 1
		zeroCount := binomial[rem][ones]
		if off >= zeroCount {
			v |= 1 << uint(pos)
			off -= zeroCount
			ones--
		}
	}
	return v
}

// packed is an append-only array of variable-width bit fields.
type packed struct {
	words   []uint64
	lenBits int
}

// grow reserves capacity for at least n more bits.
func (p *packed) grow(n int) {
	need := (p.lenBits + n + 63) / 64
	if cap(p.words) < need {
		w := make([]uint64, len(p.words), need)
		copy(w, p.words)
		p.words = w
	}
}

// append writes the low `width` bits of v (width <= 63) at the end.
func (p *packed) append(v uint64, width uint) {
	if width == 0 {
		return
	}
	w := p.lenBits >> 6
	sh := uint(p.lenBits & 63)
	for w+1 >= len(p.words) {
		p.words = append(p.words, 0)
	}
	p.words[w] |= v << sh
	if sh+width > 64 {
		p.words[w+1] |= v >> (64 - sh)
	}
	p.lenBits += int(width)
}

// read extracts `width` bits starting at bit position pos. Reads
// beyond the stream yield zero rather than faulting: positions are
// derived from sampled directories, and on a memory-mapped view a
// corrupt directory must degrade to wrong bits, not an access past
// the mapping.
func (p *packed) read(pos int, width uint) uint64 {
	if width == 0 || pos < 0 || pos+int(width) > p.lenBits {
		return 0
	}
	return extractBits(p.words, pos, int(width))
}
