package bwzip

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(2000)
		sigma := 2 + rng.Intn(50)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = uint32(rng.Intn(sigma))
		}
		c := Compress(seq, sigma)
		back := c.Decompress()
		if len(back) != len(seq) {
			t.Fatalf("trial %d: length %d != %d", trial, len(back), len(seq))
		}
		for i := range seq {
			if back[i] != seq[i] {
				t.Fatalf("trial %d: differs at %d", trial, i)
			}
		}
	}
}

func TestRoundTripEdgeCases(t *testing.T) {
	cases := [][]uint32{
		{0},
		{0, 0, 0, 0, 0},
		{7, 7, 7, 7, 7, 7},
		{1, 0, 1, 0, 1, 0},
	}
	for _, seq := range cases {
		c := Compress(seq, 8)
		back := c.Decompress()
		if len(back) != len(seq) {
			t.Fatalf("%v: bad length", seq)
		}
		for i := range seq {
			if back[i] != seq[i] {
				t.Fatalf("%v: differs at %d: %v", seq, i, back)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]uint32, len(raw))
		for i, b := range raw {
			seq[i] = uint32(b % 16)
		}
		c := Compress(seq, 16)
		back := c.Decompress()
		if len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressesStructuredData(t *testing.T) {
	// Markovian data (what BWT exploits) must compress well below raw.
	rng := rand.New(rand.NewSource(2))
	seq := make([]uint32, 20000)
	cur := uint32(0)
	for i := range seq {
		if rng.Float64() < 0.1 {
			cur = uint32(rng.Intn(64))
		}
		seq[i] = cur
	}
	c := Compress(seq, 64)
	raw := int64(len(seq)) * 6 // 6 bits/symbol plain
	if c.SizeBits() >= raw/2 {
		t.Fatalf("structured data: %d bits, want < %d", c.SizeBits(), raw/2)
	}
}

func TestMTFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := make([]uint32, 500)
	for i := range seq {
		seq[i] = uint32(rng.Intn(20))
	}
	enc := mtfEncode(seq, 20)
	dec := mtfDecode(enc, 20)
	for i := range seq {
		if dec[i] != seq[i] {
			t.Fatalf("MTF round trip differs at %d", i)
		}
	}
}

func TestRLE0RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		seq := make([]uint32, 300)
		for i := range seq {
			if rng.Float64() < 0.7 {
				seq[i] = 0 // plenty of zero runs
			} else {
				seq[i] = uint32(1 + rng.Intn(9))
			}
		}
		enc := rle0Encode(seq)
		dec := rle0Decode(enc)
		if len(dec) != len(seq) {
			t.Fatalf("trial %d: RLE0 length %d != %d", trial, len(dec), len(seq))
		}
		for i := range seq {
			if dec[i] != seq[i] {
				t.Fatalf("trial %d: RLE0 differs at %d", trial, i)
			}
		}
	}
}

func TestCompressBytesRoundTripPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	// One block: compress + decompress must round-trip.
	block := make([]uint32, len(data))
	for i, b := range data {
		block[i] = uint32(b)
	}
	c := Compress(block, 256)
	back := DecompressBytes(c)
	if len(back) != len(data) {
		t.Fatalf("length %d != %d", len(back), len(data))
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("differs at %d", i)
		}
	}
}

func TestCompressBytesBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(rng.Intn(8)) // compressible
	}
	whole := CompressBytes(data, 0)
	blocked := CompressBytes(data, 1000)
	if whole <= 0 || blocked <= 0 {
		t.Fatal("sizes must be positive")
	}
	// Small blocks lose context and pay per-block codebooks: they must
	// not beat the single-block result by any meaningful margin.
	if float64(blocked) < 0.95*float64(whole) {
		t.Fatalf("blocked (%d bits) implausibly beats whole (%d bits)", blocked, whole)
	}
}

func TestRLE0LongRun(t *testing.T) {
	seq := make([]uint32, 100000) // one huge zero run
	enc := rle0Encode(seq)
	if len(enc) > 20 {
		t.Fatalf("run of 1e5 zeros should encode in ~17 symbols, got %d", len(enc))
	}
	dec := rle0Decode(enc)
	if len(dec) != len(seq) {
		t.Fatalf("long run decodes to %d", len(dec))
	}
}
