// Package bwzip is a block-sorting compressor with the bzip2 pipeline —
// BWT, move-to-front, zero run-length coding, Huffman — built on our
// own suffix-array BWT. Go's standard library only *decompresses*
// bzip2, so this serves as the documented stand-in for the paper's
// bzip2 row in Table IV (see DESIGN.md). It is a real, invertible
// compressor, not a size estimate.
package bwzip

import (
	"fmt"

	"cinct/internal/huffman"
	"cinct/internal/suffix"
)

// Compressed is a compressed sequence.
type Compressed struct {
	n        int // original length (including the appended terminator)
	sigma    int
	lengths  []uint8 // Huffman code lengths over the RLE alphabet
	words    []uint64
	nbits    int
	rleAlpha int
}

// Compress applies BWT + MTF + RLE0 + Huffman to seq (symbols in
// [0, sigma)). A terminator is appended internally so the BWT is
// invertible.
func Compress(seq []uint32, sigma int) *Compressed {
	// Shift by one and terminate with 0, as the trajectory string does.
	t := make([]uint32, len(seq)+1)
	for i, c := range seq {
		t[i] = c + 1
	}
	t[len(seq)] = 0
	sig := sigma + 1
	bwt, _ := suffix.Transform(t, sig)

	mtf := mtfEncode(bwt, sig)
	rle := rle0Encode(mtf)

	// RLE alphabet: 0,1 encode zero-run bits (RUNA/RUNB); v+2 encodes
	// literal value v >= 1.
	alpha := sig + 2
	freqs := make([]uint64, alpha)
	for _, s := range rle {
		freqs[s]++
	}
	cb := huffman.Build(freqs)
	enc := huffman.NewEncoder(cb)
	for _, s := range rle {
		enc.Encode(int(s))
	}
	words, nbits := enc.Bits()
	return &Compressed{
		n: len(t), sigma: sig,
		lengths: cb.Lengths(), words: words, nbits: nbits, rleAlpha: alpha,
	}
}

// Decompress inverts the pipeline and returns the original sequence.
func (c *Compressed) Decompress() []uint32 {
	cb := huffman.FromLengths(c.lengths)
	dec := huffman.NewDecoder(cb)
	var rle []uint32
	pos := 0
	for pos < c.nbits {
		var s int
		s, pos = dec.Decode(c.words, pos)
		rle = append(rle, uint32(s))
	}
	mtf := rle0Decode(rle)
	bwt := mtfDecode(mtf, c.sigma)
	t := suffix.Inverse(bwt, c.sigma)
	out := make([]uint32, len(t)-1)
	for i := range out {
		out[i] = t[i] - 1
	}
	return out
}

// SizeBits returns the compressed footprint: bit stream + codebook.
func (c *Compressed) SizeBits() int64 {
	return int64(c.nbits) + int64(len(c.lengths))*8
}

// mtfEncode move-to-front transforms seq over alphabet [0, sigma).
func mtfEncode(seq []uint32, sigma int) []uint32 {
	table := make([]uint32, sigma)
	for i := range table {
		table[i] = uint32(i)
	}
	out := make([]uint32, len(seq))
	for i, c := range seq {
		var j int
		for table[j] != c {
			j++
		}
		out[i] = uint32(j)
		copy(table[1:j+1], table[:j])
		table[0] = c
	}
	return out
}

func mtfDecode(seq []uint32, sigma int) []uint32 {
	table := make([]uint32, sigma)
	for i := range table {
		table[i] = uint32(i)
	}
	out := make([]uint32, len(seq))
	for i, j := range seq {
		c := table[j]
		out[i] = c
		copy(table[1:j+1], table[:j])
		table[0] = c
	}
	return out
}

// rle0Encode encodes runs of zeros with the bzip2 RUNA/RUNB bijective
// binary scheme (symbols 0 and 1); every nonzero value v becomes v+2.
func rle0Encode(seq []uint32) []uint32 {
	var out []uint32
	emitRun := func(r uint64) {
		// Bijective base-2: digits in {1,2} -> symbols {0,1}.
		for r > 0 {
			if r&1 == 1 {
				out = append(out, 0) // RUNA
				r = (r - 1) / 2
			} else {
				out = append(out, 1) // RUNB
				r = (r - 2) / 2
			}
		}
	}
	var run uint64
	for _, c := range seq {
		if c == 0 {
			run++
			continue
		}
		emitRun(run)
		run = 0
		out = append(out, c+2)
	}
	emitRun(run)
	return out
}

func rle0Decode(seq []uint32) []uint32 {
	var out []uint32
	var run, place uint64
	flush := func() {
		for i := uint64(0); i < run; i++ {
			out = append(out, 0)
		}
		run, place = 0, 0
	}
	for _, s := range seq {
		switch s {
		case 0, 1:
			if place == 0 {
				place = 1
			}
			run += (uint64(s) + 1) * place
			place *= 2
		default:
			flush()
			out = append(out, s-2)
		}
	}
	flush()
	return out
}

// String implements fmt.Stringer for diagnostics.
func (c *Compressed) String() string {
	return fmt.Sprintf("bwzip{n=%d bits=%d}", c.n, c.SizeBits())
}

// CompressBytes compresses a byte stream the way the real bzip2 tool
// does: independent blocks of blockBytes (bzip2's default is 900 kB)
// over the byte alphabet. This is the configuration Table IV's bzip2
// row measures — the paper compressed the 32-bit binary trajectory
// file — and it is much weaker than a global symbol-level BWT, because
// each 32-bit ID is split across four bytes and context is lost at
// block boundaries. It returns the total compressed size in bits.
func CompressBytes(data []byte, blockBytes int) int64 {
	if blockBytes <= 0 {
		blockBytes = 900 * 1000
	}
	var total int64
	for lo := 0; lo < len(data); lo += blockBytes {
		hi := lo + blockBytes
		if hi > len(data) {
			hi = len(data)
		}
		block := make([]uint32, hi-lo)
		for i, b := range data[lo:hi] {
			block[i] = uint32(b)
		}
		total += Compress(block, 256).SizeBits()
	}
	return total
}

// DecompressBytes is the inverse of one CompressBytes block and exists
// for round-trip testing; callers stitching multiple blocks track
// boundaries themselves.
func DecompressBytes(c *Compressed) []byte {
	sym := c.Decompress()
	out := make([]byte, len(sym))
	for i, s := range sym {
		out[i] = byte(s)
	}
	return out
}
