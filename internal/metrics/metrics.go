// Package metrics is a minimal, dependency-free metrics registry for
// the serving stack: counters, gauges (direct or callback-backed) and
// fixed-bucket histograms, rendered in the Prometheus text exposition
// format (version 0.0.4) by WriteTo. It exists so cinctd can expose an
// operational surface without importing a client library — the repo's
// no-new-dependencies rule — and implements only what the daemon
// needs: one optional label per family, atomic hot paths, and
// deterministic output ordering.
//
// All instruments are safe for concurrent use; instrument lookups
// (Counter, With, …) take a lock and should be done once at wiring
// time, while the returned handles update lock-free.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one; Add adds n (negative deltas are ignored — counters
// never go down).
func (c *Counter) Inc() { c.v.Add(1) }
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }

// Histogram is a fixed-bucket cumulative histogram. Observe finds the
// first bucket whose upper bound admits the value; the implicit +Inf
// bucket catches the rest. Sum is kept in float64 bits under CAS so
// fractional observations (seconds) accumulate exactly like the
// Prometheus client.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow
	sum    atomic.Uint64   // float64 bits
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 { return h.total.Load() }
func (h *Histogram) Sum() float64  { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor — the standard shape for latency and cost scales.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// kind discriminates families for the # TYPE line.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// family is one named metric: either a single unlabeled instrument or
// a set of children keyed by the value of its one label.
type family struct {
	name, help string
	typ        kind
	label      string // "" for unlabeled families

	mu       sync.Mutex
	counter  *Counter
	gauge    *Gauge
	gaugeFn  func() int64
	hist     *Histogram
	buckets  []float64
	children map[string]any // label value → *Counter | *Histogram
}

// Registry holds families in registration order.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help string, typ kind, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || f.label != label {
			panic(fmt.Sprintf("metrics: %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, label: label, children: map[string]any{}}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// CounterVec registers a counter family with one label; With returns
// the child for a label value, creating it on first use.
type CounterVec struct{ f *family }

func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, label)}
}

func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.children[value] = c
	return c
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural fit for pool occupancy or WAL size, where the source of
// truth already lives elsewhere.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.family(name, help, kindGauge, "")
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hist == nil {
		f.buckets = append([]float64(nil), buckets...)
		f.hist = newHistogram(f.buckets)
	}
	return f.hist
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// WriteTo renders every family in the Prometheus text format, families
// in registration order, children sorted by label value.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var n int64
	for _, f := range fams {
		m, err := f.write(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (f *family) write(w io.Writer) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	typ := [...]string{"counter", "gauge", "histogram"}[f.typ]
	fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
	switch {
	case f.typ == kindHistogram:
		writeHistogram(&b, f.name, "", f.buckets, f.hist)
	case f.label != "":
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", f.name, f.label, k, f.children[k].(*Counter).Value())
		}
	case f.gaugeFn != nil:
		fmt.Fprintf(&b, "%s %d\n", f.name, f.gaugeFn())
	case f.gauge != nil:
		fmt.Fprintf(&b, "%s %d\n", f.name, f.gauge.Value())
	case f.counter != nil:
		fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
	}
	m, err := io.WriteString(w, b.String())
	return int64(m), err
}

// writeHistogram renders the cumulative _bucket / _sum / _count
// triple. A histogram never registered (nil) renders empty.
func writeHistogram(b *strings.Builder, name, labels string, bounds []float64, h *Histogram) {
	if h == nil {
		return
	}
	cum := uint64(0)
	for i, ub := range bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, labels, formatFloat(ub), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, h.Count())
	fmt.Fprintf(b, "%s_sum %v\n", name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

// formatFloat renders bucket bounds the way Prometheus does: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
