package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cinct_queries_total", "Queries executed.")
	c.Add(3)
	g := r.Gauge("cinct_pool_inflight", "Worker slots held.")
	g.Set(2)
	r.GaugeFunc("cinct_pool_capacity", "Worker slots total.", func() int64 { return 8 })
	v := r.CounterVec("cinct_http_requests_total", "HTTP requests by status.", "code")
	v.With("200").Add(5)
	v.With("429").Inc()
	h := r.Histogram("cinct_query_seconds", "Query latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cinct_queries_total counter",
		"cinct_queries_total 3",
		"# TYPE cinct_pool_inflight gauge",
		"cinct_pool_inflight 2",
		"cinct_pool_capacity 8",
		`cinct_http_requests_total{code="200"} 5`,
		`cinct_http_requests_total{code="429"} 1`,
		"# TYPE cinct_query_seconds histogram",
		`cinct_query_seconds_bucket{le="0.01"} 1`,
		`cinct_query_seconds_bucket{le="0.1"} 2`,
		`cinct_query_seconds_bucket{le="1"} 2`,
		`cinct_query_seconds_bucket{le="+Inf"} 3`,
		"cinct_query_seconds_sum 5.055",
		"cinct_query_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestReRegistrationReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestConcurrentExactness is the registry half of the race-soak
// contract: hammering every instrument type from many goroutines must
// lose no increments and no observations.
func TestConcurrentExactness(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	v := r.CounterVec("v_total", "v", "k")
	h := r.Histogram("h", "h", ExpBuckets(1, 2, 10))
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With("a")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				child.Inc()
				h.Observe(float64(i % 7))
				g.Dec()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 after drain", got)
	}
	if got := v.With("a").Value(); got != workers*per {
		t.Errorf("vec child = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers) * func() float64 {
		s := 0.0
		for i := 0; i < per; i++ {
			s += float64(i % 7)
		}
		return s
	}()
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}
