package mmapfile

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenWords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	want := []uint64{0x1122334455667788, 42, ^uint64(0)}
	buf := make([]byte, 8*len(want))
	for i, v := range want {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != len(buf) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(buf))
	}
	words := f.Words()
	if len(words) != len(want) {
		t.Fatalf("Words len = %d, want %d", len(words), len(want))
	}
	for i, v := range want {
		if words[i] != v {
			t.Errorf("word %d = %#x, want %#x", i, words[i], v)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != 0 || f.Words() != nil {
		t.Errorf("empty file: Len=%d Words=%v", f.Len(), f.Words())
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error opening a missing file")
	}
}
