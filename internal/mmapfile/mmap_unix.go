//go:build unix

package mmapfile

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared, so concurrent
// cinctd processes serving the same index share physical pages.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
