//go:build !unix

package mmapfile

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("mmapfile: memory mapping not supported on this platform")

// mapFile always fails here; Open falls back to the aligned read.
func mapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func unmap([]byte) error { return nil }
