// Package mmapfile maps read-only index files into memory. On unix
// hosts Open memory-maps the file, so opening costs O(1) regardless
// of file size, the kernel pages data in on demand and evicts it
// under pressure, and multiple processes serving the same file share
// physical pages. On other hosts (or when the map syscall fails) Open
// falls back to reading the whole file into an 8-byte-aligned heap
// buffer, preserving the API at heap-load cost.
package mmapfile

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"unsafe"
)

// File is a read-only, word-addressable view of a file. It is safe
// for concurrent readers. The mapping is released by Close or, if the
// File is dropped without closing, by a garbage-collection cleanup —
// so long-lived readers must keep the File reachable.
type File struct {
	data   []byte
	mapped bool

	mu      sync.Mutex
	closed  bool
	cleanup runtime.Cleanup
}

// Open maps path read-only. The returned File's Bytes and Words views
// stay valid until Close.
func Open(path string) (*File, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer osf.Close()
	st, err := osf.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("mmapfile: %s: %d bytes exceeds the address space", path, size)
	}
	f := &File{}
	if size > 0 {
		if data, err := mapFile(osf, int(size)); err == nil {
			f.data, f.mapped = data, true
		} else if f.data, err = readAligned(osf, int(size)); err != nil {
			return nil, fmt.Errorf("mmapfile: %s: %w", path, err)
		}
	}
	if f.mapped {
		// A dropped-but-unclosed File would otherwise leak its mapping
		// for the life of the process; let the GC release it.
		f.cleanup = runtime.AddCleanup(f, func(data []byte) { _ = unmap(data) }, f.data)
	}
	return f, nil
}

// readAligned reads the whole file into a word-backed buffer so Words
// can reinterpret it without an alignment fault.
func readAligned(osf *os.File, size int) ([]byte, error) {
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), len(words)*8)[:size]
	if _, err := osf.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Mapped reports whether the file is memory-mapped (false for the
// heap fallback).
func (f *File) Mapped() bool { return f.mapped }

// Len returns the file size in bytes.
func (f *File) Len() int { return len(f.data) }

// Bytes returns the raw contents. The slice must not be written to
// and becomes invalid after Close.
func (f *File) Bytes() []byte { return f.data }

// Words returns the contents as full 64-bit words (truncating any
// byte-level tail; v3 containers are always a whole number of words).
// mmap returns page-aligned memory and the fallback allocates word
// slices, so the reinterpretation is always aligned.
func (f *File) Words() []uint64 {
	n := len(f.data) / 8
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(f.data))), n)
}

// Close releases the mapping. It is idempotent, but any outstanding
// Bytes/Words views must no longer be used: only call it when no
// reader can still hold one (tests, CLI tools). Long-lived servers
// can instead drop the File and let the GC cleanup release it once
// every view is unreachable.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	data := f.data
	f.data = nil
	if f.mapped {
		f.cleanup.Stop() // exactly one of Close and the GC cleanup unmaps
		return unmap(data)
	}
	return nil
}
