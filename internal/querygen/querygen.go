// Package querygen draws query workloads from a trajectory corpus and
// checks answers against it by brute force. It is the one
// implementation of "sample a sub-path of a stored trajectory" shared
// by cmd/cinct verify, the experiments workload, the bench harness and
// the serving-layer tests — previously each kept its own copy.
package querygen

import (
	"math/rand"
)

// Sampler draws random sub-paths (in travel order) from a corpus.
type Sampler struct {
	rng      *rand.Rand
	trajs    [][]uint32
	eligible []int
	minLen   int
	maxLen   int
}

// New returns a sampler of sub-paths with length in [minLen, maxLen]
// (clamped per trajectory). Trajectories shorter than minLen are never
// drawn from; if the whole corpus is shorter, the sampler falls back
// to the longest available length, mirroring the paper's workload
// generator for degenerate datasets.
func New(trajs [][]uint32, minLen, maxLen int, seed int64) *Sampler {
	if minLen < 1 {
		minLen = 1
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	s := &Sampler{
		rng:    rand.New(rand.NewSource(seed)),
		trajs:  trajs,
		minLen: minLen,
		maxLen: maxLen,
	}
	for k, tr := range trajs {
		if len(tr) >= minLen {
			s.eligible = append(s.eligible, k)
		}
	}
	if len(s.eligible) == 0 {
		longest := 0
		for _, tr := range trajs {
			if len(tr) > longest {
				longest = len(tr)
			}
		}
		s.minLen, s.maxLen = longest, longest
		for k, tr := range trajs {
			if len(tr) >= longest {
				s.eligible = append(s.eligible, k)
			}
		}
	}
	return s
}

// NewFixed samples sub-paths of exactly length (with the same
// longest-available fallback).
func NewFixed(trajs [][]uint32, length int, seed int64) *Sampler {
	return New(trajs, length, length, seed)
}

// Next draws one sub-path. The returned slice aliases the corpus; do
// not modify it.
func (s *Sampler) Next() []uint32 {
	if len(s.eligible) == 0 {
		return nil
	}
	tr := s.trajs[s.eligible[s.rng.Intn(len(s.eligible))]]
	m := s.minLen
	if hi := min(s.maxLen, len(tr)); hi > m {
		m += s.rng.Intn(hi - m + 1)
	}
	start := 0
	if len(tr) > m {
		start = s.rng.Intn(len(tr) - m + 1)
	}
	return tr[start : start+m]
}

// Draw returns n sub-paths.
func (s *Sampler) Draw(n int) [][]uint32 {
	out := make([][]uint32, 0, n)
	for len(out) < n {
		p := s.Next()
		if p == nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// NaiveCount scans the corpus for occurrences of path — the ground
// truth Count is verified against.
func NaiveCount(trajs [][]uint32, path []uint32) int {
	if len(path) == 0 {
		return 0
	}
	count := 0
	for _, tr := range trajs {
	scan:
		for i := 0; i+len(path) <= len(tr); i++ {
			for j := range path {
				if tr[i+j] != path[j] {
					continue scan
				}
			}
			count++
		}
	}
	return count
}
