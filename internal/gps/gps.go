// Package gps is the front of the raw-ingestion pipeline: it turns
// noisy device traces — batches of (lat, lon, t) observations — into
// the map-matched edge sequences (plus interpolated per-edge
// timestamp columns) that the trajectory indexes consume. Matching is
// delegated to internal/mapmatch; this package owns the wire shapes,
// the per-trace configuration overrides, timestamp validation and
// interpolation, and the typed reject-reason catalog that ingestion
// endpoints report verbatim.
//
// Coordinates are planar: on the synthetic road networks this
// repository generates, Lon maps to X and Lat to Y directly. A real
// deployment would project WGS-84 into a local planar frame first;
// that projection is the only piece missing from this pipeline.
package gps

import (
	"errors"
	"fmt"
	"math/rand"

	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// Point is one raw GPS observation on the wire.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	// T is the observation timestamp (epoch seconds or any
	// non-decreasing integer clock). A trace whose points are all
	// T == 0 is treated as untimed.
	T int64 `json:"t"`
}

// Trace is one device trace: an ordered point batch plus optional
// per-trace matcher overrides (zero values fall back to the serving
// matcher's defaults).
type Trace struct {
	Points []Point `json:"points"`
	// Radius overrides the candidate radius for this trace.
	Radius float64 `json:"radius,omitempty"`
	// MaxGap overrides the longest skippable run of candidate-free
	// interior points; nil keeps the matcher default, 0 is strict.
	MaxGap *int `json:"maxGap,omitempty"`
	// MinMargin overrides the reject-on-ambiguity margin; nil keeps
	// the matcher default, 0 disables the check.
	MinMargin *float64 `json:"minMargin,omitempty"`
}

// Timed reports whether the trace carries timestamps (any non-zero T).
func (tr Trace) Timed() bool {
	for _, p := range tr.Points {
		if p.T != 0 {
			return true
		}
	}
	return false
}

// Reject-reason catalog. The mapmatch reasons pass through verbatim;
// the two reasons below originate in this layer and the engine.
const (
	// RejectBadTimestamps: the trace claims timestamps but they are
	// not non-decreasing.
	RejectBadTimestamps = "bad_timestamps"
	// RejectNoRoadnet: the target index has no road network attached,
	// so raw GPS cannot be matched at all.
	RejectNoRoadnet = "no_roadnet"
	// RejectUntimed: the target index is temporal but the trace
	// carries no timestamps.
	RejectUntimed = "untimed"
)

// Reject is the typed per-trace failure: a reason from the catalog
// plus the offending point index (-1 when no single point is at
// fault).
type Reject struct {
	Reason string
	Point  int
}

func (e *Reject) Error() string {
	if e.Point < 0 {
		return fmt.Sprintf("gps: trace rejected: %s", e.Reason)
	}
	return fmt.Sprintf("gps: trace rejected at point %d: %s", e.Point, e.Reason)
}

// Matched is one successfully map-matched trace, in the shape Append
// wants: the connected edge path and, for timed traces, a per-edge
// timestamp column aligned with it.
type Matched struct {
	Edges []uint32
	// Times is nil for untimed traces. For timed ones, anchored edges
	// carry their observation's timestamp and stitched connector edges
	// are linearly interpolated between the surrounding anchors, so
	// the column is non-decreasing.
	Times []int64
	// Skipped counts interior points dropped as candidate-free gaps.
	Skipped int
	// Points is the number of observations consumed.
	Points int
}

// Matcher binds a road network to a default matching configuration —
// the per-index serving object the engine's graph catalog hands out.
type Matcher struct {
	g   *roadnet.Graph
	cfg mapmatch.Config
}

// NewMatcher builds a Matcher; a zero cfg is replaced by
// mapmatch.DefaultConfig with MaxGap 2.
func NewMatcher(g *roadnet.Graph, cfg mapmatch.Config) *Matcher {
	if cfg == (mapmatch.Config{}) {
		cfg = mapmatch.DefaultConfig()
		cfg.MaxGap = 2
	}
	return &Matcher{g: g, cfg: cfg}
}

// Graph returns the underlying road network.
func (m *Matcher) Graph() *roadnet.Graph { return m.g }

// Config returns the default matching configuration.
func (m *Matcher) Config() mapmatch.Config { return m.cfg }

// Match turns one trace into an indexable trajectory. Failures are
// always a *Reject with a catalog reason.
func (m *Matcher) Match(tr Trace) (Matched, error) {
	cfg := m.cfg
	if tr.Radius > 0 {
		cfg.CandidateRadius = tr.Radius
	}
	if tr.MaxGap != nil {
		cfg.MaxGap = *tr.MaxGap
	}
	if tr.MinMargin != nil {
		cfg.MinMargin = *tr.MinMargin
	}
	timed := tr.Timed()
	if timed {
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].T < tr.Points[i-1].T {
				return Matched{}, &Reject{Reason: RejectBadTimestamps, Point: i}
			}
		}
	}
	pts := make([]mapmatch.Point, len(tr.Points))
	for i, p := range tr.Points {
		pts[i] = mapmatch.Point{X: p.Lon, Y: p.Lat}
	}
	r, err := mapmatch.MatchTrace(m.g, pts, cfg)
	if err != nil {
		var rej *mapmatch.RejectError
		if errors.As(err, &rej) {
			return Matched{}, &Reject{Reason: string(rej.Reason), Point: rej.Point}
		}
		return Matched{}, &Reject{Reason: string(mapmatch.RejectDisconnected), Point: -1}
	}
	out := Matched{
		Edges:   make([]uint32, len(r.Path)),
		Skipped: r.Skipped,
		Points:  len(tr.Points),
	}
	for i, e := range r.Path {
		out.Edges[i] = uint32(e)
	}
	if timed {
		out.Times = interpolateTimes(r.PointIdx, tr.Points)
	}
	return out, nil
}

// interpolateTimes builds the per-edge timestamp column: anchored
// edges take their observation's T, connector edges interpolate
// linearly (by path position) between the surrounding anchors.
// MatchTrace guarantees the first and last edges are anchored and
// anchor indexes are increasing, so every connector has anchors on
// both sides and the result is non-decreasing.
func interpolateTimes(ptIdx []int, pts []Point) []int64 {
	times := make([]int64, len(ptIdx))
	prev := 0 // index into ptIdx of the previous anchor
	for i, pi := range ptIdx {
		if pi < 0 {
			continue
		}
		times[i] = pts[pi].T
		if gap := i - prev; gap > 1 {
			t0, t1 := times[prev], times[i]
			for j := prev + 1; j < i; j++ {
				frac := float64(j-prev) / float64(gap)
				times[j] = t0 + int64(frac*float64(t1-t0))
			}
		}
		prev = i
	}
	return times
}

// Simulate fabricates a noisy timed trace along a known edge path —
// the synthetic stand-in for device traffic used by tests, the smoke
// script and cinctbench. Timestamps start at start and advance dt per
// point.
func Simulate(g *roadnet.Graph, path []roadnet.EdgeID, noise float64, start, dt int64, rng *rand.Rand) Trace {
	raw := mapmatch.SimulateTrace(g, path, noise, rng)
	tr := Trace{Points: make([]Point, len(raw))}
	for i, p := range raw {
		tr.Points[i] = Point{Lat: p.Y, Lon: p.X, T: start + int64(i)*dt}
	}
	return tr
}
