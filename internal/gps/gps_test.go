package gps

import (
	"errors"
	"math/rand"
	"testing"

	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// walk builds a connected random walk avoiding immediate U-turns (the
// two directions of one street are geometrically indistinguishable).
func walk(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []roadnet.EdgeID{cur}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			choices = g.NextEdges(cur)
			if len(choices) == 0 {
				break
			}
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, cur)
	}
	return path
}

func TestMatcherRoundTrip(t *testing.T) {
	g := roadnet.Grid(8, 8, 21)
	rng := rand.New(rand.NewSource(22))
	m := NewMatcher(g, mapmatch.Config{})
	for trial := 0; trial < 10; trial++ {
		path := walk(g, rng, 12)
		tr := Simulate(g, path, 0.01, 1000, 15, rng)
		got, err := m.Match(tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Edges) != len(path) {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(got.Edges), len(path))
		}
		for i, e := range path {
			if got.Edges[i] != uint32(e) {
				t.Fatalf("trial %d: edge %d mismatch", trial, i)
			}
		}
		if len(got.Times) != len(got.Edges) {
			t.Fatalf("trial %d: %d times for %d edges", trial, len(got.Times), len(got.Edges))
		}
		for i := 1; i < len(got.Times); i++ {
			if got.Times[i] < got.Times[i-1] {
				t.Fatalf("trial %d: times not non-decreasing: %v", trial, got.Times)
			}
		}
		if got.Times[0] != 1000 {
			t.Fatalf("trial %d: first time %d, want 1000", trial, got.Times[0])
		}
		if got.Points != len(tr.Points) {
			t.Fatalf("trial %d: points %d, want %d", trial, got.Points, len(tr.Points))
		}
	}
}

func TestMatcherUntimedTrace(t *testing.T) {
	g := roadnet.Grid(6, 6, 23)
	rng := rand.New(rand.NewSource(24))
	m := NewMatcher(g, mapmatch.Config{})
	path := walk(g, rng, 8)
	tr := Simulate(g, path, 0.01, 0, 0, rng) // all T == 0 → untimed
	got, err := m.Match(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Times != nil {
		t.Fatalf("untimed trace produced times %v", got.Times)
	}
}

func TestMatcherRejectsBadTimestamps(t *testing.T) {
	g := roadnet.Grid(6, 6, 25)
	rng := rand.New(rand.NewSource(26))
	m := NewMatcher(g, mapmatch.Config{})
	tr := Simulate(g, walk(g, rng, 6), 0.01, 100, 10, rng)
	tr.Points[3].T = 50 // goes backwards
	_, err := m.Match(tr)
	var rej *Reject
	if !errors.As(err, &rej) || rej.Reason != RejectBadTimestamps || rej.Point != 3 {
		t.Fatalf("Match = %v, want bad_timestamps at point 3", err)
	}
}

func TestMatcherRejectsPassThrough(t *testing.T) {
	g := roadnet.Grid(6, 6, 27)
	m := NewMatcher(g, mapmatch.Config{})
	cases := []struct {
		name   string
		tr     Trace
		reason string
	}{
		{"empty", Trace{}, string(mapmatch.RejectEmptyTrace)},
		{"off network", Trace{Points: []Point{{Lat: 500, Lon: 500}, {Lat: 501, Lon: 500}}}, string(mapmatch.RejectNoCandidates)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := m.Match(tc.tr)
			var rej *Reject
			if !errors.As(err, &rej) || rej.Reason != tc.reason {
				t.Fatalf("Match = %v, want reason %q", err, tc.reason)
			}
		})
	}
}

func TestMatcherPerTraceOverrides(t *testing.T) {
	g := roadnet.Grid(8, 8, 28)
	rng := rand.New(rand.NewSource(29))
	m := NewMatcher(g, mapmatch.Config{})
	path := walk(g, rng, 10)
	tr := Simulate(g, path, 0.01, 100, 10, rng)
	// Drop three interior points: beyond the default MaxGap of 2.
	for i := 4; i <= 6; i++ {
		tr.Points[i].Lat, tr.Points[i].Lon = 900, 900
	}
	if _, err := m.Match(tr); err == nil {
		t.Fatal("gap of 3 should reject at default MaxGap 2")
	}
	wide := 4
	tr.MaxGap = &wide
	if _, err := m.Match(tr); err != nil {
		t.Fatalf("gap of 3 with MaxGap 4 override: %v", err)
	}
	strict := 0
	tr.MaxGap = &strict
	_, err := m.Match(tr)
	var rej *Reject
	if !errors.As(err, &rej) || rej.Reason != string(mapmatch.RejectNoCandidates) {
		t.Fatalf("strict override: %v, want no_candidates", err)
	}
	// A tiny radius override leaves even on-network points candidateless.
	tr.MaxGap = nil
	tr.Radius = 1e-9
	if _, err := m.Match(tr); err == nil {
		t.Fatal("radius 1e-9 should reject")
	}
}

func TestInterpolateTimes(t *testing.T) {
	// Anchors at positions 0 and 3 with times 100 and 400: connectors
	// at 1 and 2 interpolate to 200 and 300.
	ptIdx := []int{0, -1, -1, 1}
	pts := []Point{{T: 100}, {T: 400}}
	got := interpolateTimes(ptIdx, pts)
	want := []int64{100, 200, 300, 400}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interpolated %v, want %v", got, want)
		}
	}
}
