// Package wire holds the JSON shapes of the /v1/{index}/query NDJSON
// protocol and the page decoder both sides of it share: the server
// package aliases Request as its public QueryRequest, the HTTP client
// decodes pages with ReadPage, and the cluster fan-out uses the same
// decoder to consume scoped pages from peers. Keeping one codec is
// what makes "distributed answers byte-identical to single-node" a
// checkable property: there is no second parser to drift.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cinct"
)

// Request is the body of POST /v1/{index}/query — the wire form of
// cinct.Query. Kind is spelled "occurrences" (the default),
// "trajectories" or "count". From/To, when either is present, form the
// closed interval constraint; a missing bound defaults to the widest
// value, mirroring the legacy temporal endpoints.
type Request struct {
	Path   []uint32 `json:"path"`
	Kind   string   `json:"kind,omitempty"`
	From   *int64   `json:"from,omitempty"`
	To     *int64   `json:"to,omitempty"`
	Limit  int      `json:"limit,omitempty"`
	Cursor string   `json:"cursor,omitempty"`
}

// Query converts the wire form to the library descriptor.
func (qr Request) Query() (cinct.Query, error) {
	kind, err := cinct.KindFromString(qr.Kind)
	if err != nil {
		return cinct.Query{}, err
	}
	q := cinct.Query{Path: qr.Path, Kind: kind, Limit: qr.Limit, Cursor: qr.Cursor}
	if qr.From != nil || qr.To != nil {
		iv := &cinct.Interval{From: math.MinInt64, To: math.MaxInt64}
		if qr.From != nil {
			iv.From = *qr.From
		}
		if qr.To != nil {
			iv.To = *qr.To
		}
		q.Interval = iv
	}
	return q, nil
}

// FromQuery converts a library descriptor to the wire form (what
// Client.Search posts).
func FromQuery(q cinct.Query) Request {
	qr := Request{Path: q.Path, Kind: q.Kind.String(), Limit: q.Limit, Cursor: q.Cursor}
	if q.Interval != nil {
		from, to := q.Interval.From, q.Interval.To
		qr.From, qr.To = &from, &to
	}
	return qr
}

// Page is one decoded page of POST /v1/{index}/query: the hits in
// canonical order, the count reported by the summary record, the
// resume cursor ("" when the server exhausted the stream) and — for
// scoped cluster pages — the serving node's index identity.
type Page struct {
	Hits   []cinct.Hit
	Count  int
	Cursor string
	// Ident is the serving index's identity token (epoch + load
	// signature), emitted for scoped queries so a cluster coordinator
	// can mint per-node resume cursors. Empty on plain queries.
	Ident string
}

// StreamError is a mid-stream failure reported by the summary record:
// the earlier hit records form a valid prefix of the result. Partial
// lists peers the serving node could not reach, when the failure was a
// cluster fan-out losing a node.
type StreamError struct {
	Msg     string
	Partial []string
}

func (e *StreamError) Error() string { return e.Msg }

// line is the union shape of an NDJSON stream record: a summary line
// carries done/count/cursor/error, a hit line carries
// trajectory/offset/enteredAt. The pointer fields disambiguate.
type line struct {
	Trajectory *int     `json:"trajectory"`
	Offset     *int     `json:"offset"`
	EnteredAt  *int64   `json:"enteredAt"`
	Done       *bool    `json:"done"`
	Count      *int     `json:"count"`
	Cursor     string   `json:"cursor"`
	Ident      string   `json:"ident"`
	Error      string   `json:"error"`
	Partial    []string `json:"partial"`
}

// maxLine bounds one NDJSON record; generous, since a record is one
// hit or one summary.
const maxLine = 1 << 20

// ReadPage decodes one NDJSON query stream into a Page. A summary
// record carrying an error returns (*StreamError); a stream that ends
// without a summary record is a transport truncation and errors too.
func ReadPage(r io.Reader) (*Page, error) {
	page := &Page{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	sawSummary := false
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec line
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("server: bad stream record: %w", err)
		}
		switch {
		case rec.Done != nil || rec.Error != "":
			if rec.Error != "" {
				return nil, &StreamError{Msg: rec.Error, Partial: rec.Partial}
			}
			if rec.Count != nil {
				page.Count = *rec.Count
			}
			page.Cursor = rec.Cursor
			page.Ident = rec.Ident
			sawSummary = true
		case rec.Trajectory != nil && rec.Offset != nil:
			h := cinct.Hit{Match: cinct.Match{Trajectory: *rec.Trajectory, Offset: *rec.Offset}}
			if rec.EnteredAt != nil {
				h.EnteredAt = *rec.EnteredAt
			}
			page.Hits = append(page.Hits, h)
		default:
			return nil, fmt.Errorf("server: unrecognized stream record %q", raw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawSummary {
		return nil, fmt.Errorf("server: truncated query stream (no summary record)")
	}
	return page, nil
}
