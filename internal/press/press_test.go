package press

import (
	"testing"

	"cinct/internal/roadnet"
	"cinct/internal/trajgen"
)

func TestRoundTripOnShortestPathTrips(t *testing.T) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 60, MeanLen: 20, Seed: 2}
	d := trajgen.MOGen(cfg)
	c := Compress(d.Graph, d.Trajs)
	back := c.Decompress()
	if len(back) != len(d.Trajs) {
		t.Fatal("trajectory count changed")
	}
	for k := range d.Trajs {
		if len(back[k]) != len(d.Trajs[k]) {
			t.Fatalf("trajectory %d: %d edges, want %d", k, len(back[k]), len(d.Trajs[k]))
		}
		for i := range d.Trajs[k] {
			if back[k][i] != d.Trajs[k][i] {
				t.Fatalf("trajectory %d differs at %d", k, i)
			}
		}
	}
}

func TestShortestPathTripsCompressHard(t *testing.T) {
	// MO-gen trips are (mostly) shortest paths: PRESS should keep very
	// few anchors.
	cfg := trajgen.Config{GridW: 10, GridH: 10, NumTrajs: 80, MeanLen: 25, Seed: 3}
	d := trajgen.MOGen(cfg)
	c := Compress(d.Graph, d.Trajs)
	total := 0
	for _, tr := range d.Trajs {
		total += len(tr)
	}
	if c.AnchorCount() > total/2 {
		t.Fatalf("kept %d anchors of %d edges; SP trips should compress much harder",
			c.AnchorCount(), total)
	}
}

func TestRandomWalksRoundTrip(t *testing.T) {
	// Turn-biased walks are not shortest paths; compression is weaker
	// but must stay lossless.
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 50, MeanLen: 20, Seed: 4}
	d := trajgen.Roma(cfg)
	c := Compress(d.Graph, d.Trajs)
	back := c.Decompress()
	for k := range d.Trajs {
		if len(back[k]) != len(d.Trajs[k]) {
			t.Fatalf("trajectory %d length changed: %d vs %d", k, len(back[k]), len(d.Trajs[k]))
		}
		for i := range d.Trajs[k] {
			if back[k][i] != d.Trajs[k][i] {
				t.Fatalf("trajectory %d differs at %d", k, i)
			}
		}
	}
}

func TestTinyTrajectories(t *testing.T) {
	g := roadnet.Grid(4, 4, 5)
	trajs := [][]uint32{{0}, {0, uint32(g.NextEdges(0)[0])}}
	c := Compress(g, trajs)
	back := c.Decompress()
	for k := range trajs {
		if len(back[k]) != len(trajs[k]) {
			t.Fatalf("tiny trajectory %d changed", k)
		}
	}
}

func TestSizeBitsSane(t *testing.T) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 40, MeanLen: 15, Seed: 6}
	d := trajgen.MOGen(cfg)
	c := Compress(d.Graph, d.Trajs)
	if c.SizeBits() <= 0 {
		t.Fatal("SizeBits must be positive")
	}
	var raw int64
	for _, tr := range d.Trajs {
		raw += int64(len(tr)) * 32
	}
	if c.SizeBits() >= raw {
		t.Fatalf("PRESS must beat raw 32-bit storage: %d vs %d", c.SizeBits(), raw)
	}
}
