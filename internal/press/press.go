// Package press implements a PRESS-style spatial-path compressor (Song
// et al., PVLDB 2014): subpaths that coincide with network shortest
// paths are replaced by their endpoints, and the surviving "anchor"
// edges are entropy-coded. The original PRESS has no public
// implementation (the paper itself could only evaluate it on one
// dataset); this reconstruction follows its shortest-path-coding
// principle and is evaluated the same way. Decode reverses the process
// exactly, so compression is lossless.
package press

import (
	"cinct/internal/huffman"
	"cinct/internal/roadnet"
)

// Compressed is one corpus compressed by shortest-path coding.
type Compressed struct {
	g       *roadnet.Graph
	Anchors [][]uint32 // per trajectory: the surviving anchor edges
}

// Compress greedily covers each trajectory with maximal shortest-path
// segments: an anchor is emitted whenever extending the current
// segment by one more edge would deviate from the shortest path
// between the segment's endpoints.
func Compress(g *roadnet.Graph, trajs [][]uint32) *Compressed {
	c := &Compressed{g: g, Anchors: make([][]uint32, len(trajs))}
	for k, tr := range trajs {
		c.Anchors[k] = compressOne(g, tr)
	}
	return c
}

// compressOne returns the anchor subsequence of one trajectory.
func compressOne(g *roadnet.Graph, tr []uint32) []uint32 {
	if len(tr) <= 2 {
		out := make([]uint32, len(tr))
		copy(out, tr)
		return out
	}
	anchors := []uint32{tr[0]}
	segStart := 0
	for i := segStart + 1; i < len(tr); i++ {
		if !isShortestSegment(g, tr[segStart:i+1]) {
			// tr[segStart..i-1] was a shortest path; close it at i-1.
			anchors = append(anchors, tr[i-1])
			segStart = i - 1
		}
	}
	anchors = append(anchors, tr[len(tr)-1])
	return anchors
}

// isShortestSegment reports whether the edge sequence seg coincides
// with *the* shortest path its endpoints select (the deterministic
// Dijkstra of roadnet), so encode/decode agree.
func isShortestSegment(g *roadnet.Graph, seg []uint32) bool {
	if len(seg) <= 1 {
		return true
	}
	first := roadnet.EdgeID(seg[0])
	last := roadnet.EdgeID(seg[len(seg)-1])
	mid, ok := g.ConnectEdges(first, last)
	if !ok || len(mid) != len(seg)-2 {
		return false
	}
	for i, e := range mid {
		if uint32(e) != seg[i+1] {
			return false
		}
	}
	return true
}

// Decompress reconstructs every trajectory from its anchors.
func (c *Compressed) Decompress() [][]uint32 {
	out := make([][]uint32, len(c.Anchors))
	for k, anchors := range c.Anchors {
		if len(anchors) == 0 {
			continue
		}
		tr := []uint32{anchors[0]}
		for i := 1; i < len(anchors); i++ {
			prev := roadnet.EdgeID(tr[len(tr)-1])
			next := roadnet.EdgeID(anchors[i])
			mid, ok := c.g.ConnectEdges(prev, next)
			if ok {
				for _, e := range mid {
					tr = append(tr, uint32(e))
				}
			}
			tr = append(tr, anchors[i])
		}
		out[k] = tr
	}
	return out
}

// SizeBits returns the compressed footprint: Huffman-coded anchors
// (plus per-trajectory separators) and the codebook. The road network
// itself is not counted, matching the paper's treatment of PRESS.
func (c *Compressed) SizeBits() int64 {
	maxSym := uint32(c.g.NumEdges()) // separator symbol
	freqs := make([]uint64, maxSym+1)
	for _, anchors := range c.Anchors {
		for _, a := range anchors {
			freqs[a]++
		}
		freqs[maxSym]++
	}
	cb := huffman.Build(freqs)
	return int64(cb.EncodedBits(freqs)) + int64(len(freqs))*8
}

// AnchorCount returns the total number of anchors kept.
func (c *Compressed) AnchorCount() int {
	total := 0
	for _, a := range c.Anchors {
		total += len(a)
	}
	return total
}
