// Package huffman builds Huffman codes over arbitrary integer alphabets.
// It serves two roles in the reproduction: it defines the shape of
// Huffman-shaped wavelet trees (the representation CiNCT and ICB-Huff
// store the BWT in), and it is the final entropy coder of the MEL and
// bwzip baseline compressors.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"
)

// Code is one symbol's codeword: the low Len bits of Bits, most
// significant bit first (bit Len-1 of Bits is emitted first).
type Code struct {
	Bits uint64
	Len  uint8
}

// Codebook maps dense symbols [0, σ) to prefix-free codewords. Symbols
// with zero frequency get a zero-length code and must never be encoded.
type Codebook struct {
	Codes []Code
	// MaxLen is the longest codeword length in bits.
	MaxLen int
}

type hnode struct {
	weight      uint64
	symbol      int // -1 for internal nodes
	left, right *hnode
	order       int // tie-break for determinism
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical Huffman codebook from symbol frequencies.
// freqs[s] is the weight of symbol s; zero-weight symbols receive no
// code. If exactly one symbol has nonzero weight it is assigned a
// one-bit code so that encoded output remains self-delimiting.
func Build(freqs []uint64) *Codebook {
	lengths := CodeLengths(freqs)
	return FromLengths(lengths)
}

// CodeLengths returns the Huffman code length for each symbol (0 for
// unused symbols).
func CodeLengths(freqs []uint64) []uint8 {
	h := make(hheap, 0, len(freqs))
	order := 0
	for s, f := range freqs {
		if f > 0 {
			h = append(h, &hnode{weight: f, symbol: s, order: order})
			order++
		}
	}
	lengths := make([]uint8, len(freqs))
	switch len(h) {
	case 0:
		return lengths
	case 1:
		lengths[h[0].symbol] = 1
		return lengths
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		heap.Push(&h, &hnode{weight: a.weight + b.weight, symbol: -1, left: a, right: b, order: order})
		order++
	}
	root := h[0]
	var walk func(n *hnode, depth uint8)
	walk = func(n *hnode, depth uint8) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// FromLengths builds the canonical codebook for the given code lengths:
// codes are assigned in increasing (length, symbol) order so the book is
// reproducible from lengths alone (used by serialization).
func FromLengths(lengths []uint8) *Codebook {
	type sl struct {
		sym int
		ln  uint8
	}
	syms := make([]sl, 0, len(lengths))
	maxLen := 0
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
	}
	if maxLen > 63 {
		panic(fmt.Sprintf("huffman: code length %d exceeds 63 bits", maxLen))
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].ln != syms[j].ln {
			return syms[i].ln < syms[j].ln
		}
		return syms[i].sym < syms[j].sym
	})
	cb := &Codebook{Codes: make([]Code, len(lengths)), MaxLen: maxLen}
	var code uint64
	var prevLen uint8
	for _, s := range syms {
		code <<= s.ln - prevLen
		cb.Codes[s.sym] = Code{Bits: code, Len: s.ln}
		code++
		prevLen = s.ln
	}
	return cb
}

// Lengths returns the per-symbol code lengths (for serialization).
func (cb *Codebook) Lengths() []uint8 {
	ls := make([]uint8, len(cb.Codes))
	for s, c := range cb.Codes {
		ls[s] = c.Len
	}
	return ls
}

// EncodedBits returns the total number of bits Encode would emit for
// the given frequency histogram under this codebook.
func (cb *Codebook) EncodedBits(freqs []uint64) uint64 {
	var total uint64
	for s, f := range freqs {
		if f > 0 {
			total += f * uint64(cb.Codes[s].Len)
		}
	}
	return total
}

// Encoder writes codewords into a growing bit buffer (MSB-first within
// each codeword).
type Encoder struct {
	cb    *Codebook
	words []uint64
	nbits int
}

// NewEncoder returns an encoder for the codebook.
func NewEncoder(cb *Codebook) *Encoder { return &Encoder{cb: cb} }

// Encode appends the codeword for symbol s.
func (e *Encoder) Encode(s int) {
	c := e.cb.Codes[s]
	if c.Len == 0 {
		panic(fmt.Sprintf("huffman: symbol %d has no code", s))
	}
	for i := int(c.Len) - 1; i >= 0; i-- {
		bit := c.Bits >> uint(i) & 1
		w := e.nbits >> 6
		if w == len(e.words) {
			e.words = append(e.words, 0)
		}
		e.words[w] |= bit << uint(e.nbits&63)
		e.nbits++
	}
}

// Bits returns the bit stream written so far and its length in bits.
func (e *Encoder) Bits() ([]uint64, int) { return e.words, e.nbits }

// Decoder reads canonical codewords from a bit buffer.
type Decoder struct {
	root *dnode
}

type dnode struct {
	zero, one *dnode
	symbol    int // -1 for internal
}

// NewDecoder builds a decoding trie from the codebook.
func NewDecoder(cb *Codebook) *Decoder {
	root := &dnode{symbol: -1}
	for s, c := range cb.Codes {
		if c.Len == 0 {
			continue
		}
		n := root
		for i := int(c.Len) - 1; i >= 0; i-- {
			bit := c.Bits >> uint(i) & 1
			var next **dnode
			if bit == 0 {
				next = &n.zero
			} else {
				next = &n.one
			}
			if *next == nil {
				*next = &dnode{symbol: -1}
			}
			n = *next
		}
		n.symbol = s
	}
	return &Decoder{root: root}
}

// Decode reads one symbol starting at bit position pos and returns the
// symbol and the position after its codeword.
func (d *Decoder) Decode(words []uint64, pos int) (symbol, next int) {
	n := d.root
	for n.symbol < 0 {
		bit := words[pos>>6] >> uint(pos&63) & 1
		if bit == 0 {
			n = n.zero
		} else {
			n = n.one
		}
		if n == nil {
			panic("huffman: invalid bit stream")
		}
		pos++
	}
	return n.symbol, pos
}
