package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildPrefixFree(t *testing.T) {
	freqs := []uint64{10, 0, 3, 7, 1, 1, 25}
	cb := Build(freqs)
	for i, ci := range cb.Codes {
		if freqs[i] == 0 {
			if ci.Len != 0 {
				t.Fatalf("unused symbol %d got a code", i)
			}
			continue
		}
		if ci.Len == 0 {
			t.Fatalf("used symbol %d has no code", i)
		}
		for j, cj := range cb.Codes {
			if i == j || freqs[j] == 0 {
				continue
			}
			// ci must not be a prefix of cj.
			if ci.Len <= cj.Len && cj.Bits>>(cj.Len-ci.Len) == ci.Bits {
				t.Fatalf("code of %d is a prefix of code of %d", i, j)
			}
		}
	}
}

func TestSingleSymbol(t *testing.T) {
	cb := Build([]uint64{0, 42, 0})
	if cb.Codes[1].Len != 1 {
		t.Fatalf("single-symbol code length = %d, want 1", cb.Codes[1].Len)
	}
	e := NewEncoder(cb)
	for i := 0; i < 5; i++ {
		e.Encode(1)
	}
	words, n := e.Bits()
	if n != 5 {
		t.Fatalf("encoded bits = %d, want 5", n)
	}
	d := NewDecoder(cb)
	pos := 0
	for i := 0; i < 5; i++ {
		var s int
		s, pos = d.Decode(words, pos)
		if s != 1 {
			t.Fatalf("decoded %d, want 1", s)
		}
	}
}

func TestEmptyFreqs(t *testing.T) {
	cb := Build([]uint64{0, 0, 0})
	for _, c := range cb.Codes {
		if c.Len != 0 {
			t.Fatal("no symbol should have a code")
		}
	}
	cb = Build(nil)
	if len(cb.Codes) != 0 {
		t.Fatal("nil freqs should produce empty codebook")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		sigma := 2 + rng.Intn(200)
		n := 1 + rng.Intn(2000)
		seq := make([]int, n)
		freqs := make([]uint64, sigma)
		for i := range seq {
			// Zipf-ish skew to get varied code lengths.
			s := int(math.Floor(math.Pow(rng.Float64(), 3) * float64(sigma)))
			if s >= sigma {
				s = sigma - 1
			}
			seq[i] = s
			freqs[s]++
		}
		cb := Build(freqs)
		e := NewEncoder(cb)
		for _, s := range seq {
			e.Encode(s)
		}
		words, total := e.Bits()
		if uint64(total) != cb.EncodedBits(freqs) {
			t.Fatalf("EncodedBits=%d actual=%d", cb.EncodedBits(freqs), total)
		}
		d := NewDecoder(cb)
		pos := 0
		for i, want := range seq {
			var got int
			got, pos = d.Decode(words, pos)
			if got != want {
				t.Fatalf("trial %d: symbol %d decoded as %d, want %d", trial, i, got, want)
			}
		}
		if pos != total {
			t.Fatalf("decoder consumed %d bits, want %d", pos, total)
		}
	}
}

func TestCanonicalFromLengthsStable(t *testing.T) {
	freqs := []uint64{5, 9, 12, 13, 16, 45}
	cb1 := Build(freqs)
	cb2 := FromLengths(cb1.Lengths())
	for s := range freqs {
		if cb1.Codes[s] != cb2.Codes[s] {
			t.Fatalf("symbol %d: %+v != %+v", s, cb1.Codes[s], cb2.Codes[s])
		}
	}
}

func TestOptimalityNearEntropy(t *testing.T) {
	// Average code length must be within [H0, H0+1).
	freqs := []uint64{50, 20, 15, 10, 5}
	var n float64
	for _, f := range freqs {
		n += float64(f)
	}
	var h0 float64
	for _, f := range freqs {
		p := float64(f) / n
		h0 -= p * math.Log2(p)
	}
	cb := Build(freqs)
	avg := float64(cb.EncodedBits(freqs)) / n
	if avg < h0 || avg >= h0+1 {
		t.Fatalf("average code length %.3f outside [H0=%.3f, H0+1)", avg, h0)
	}
}

func TestKraftInequalityQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		freqs := make([]uint64, len(raw))
		used := 0
		for i, r := range raw {
			freqs[i] = uint64(r)
			if r > 0 {
				used++
			}
		}
		if used < 2 {
			return true
		}
		cb := Build(freqs)
		// Kraft sum of an optimal prefix code over >=2 symbols is exactly 1.
		var kraft float64
		for s, c := range cb.Codes {
			if freqs[s] > 0 {
				kraft += math.Pow(2, -float64(c.Len))
			}
		}
		return math.Abs(kraft-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
