package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a, err := newRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing([]string{"http://c:3", "http://a:1", "http://b:2", "http://a:1"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.fingerprint() != b.fingerprint() {
		t.Fatalf("fingerprint differs across node order: %x vs %x", a.fingerprint(), b.fingerprint())
	}
	for traj := 0; traj < 10_000; traj++ {
		if oa, ob := a.owner(traj), b.owner(traj); oa != ob {
			t.Fatalf("traj %d: owner %q vs %q", traj, oa, ob)
		}
	}
}

func TestRingCoversAllSlotsAndEveryNodeOwnsSome(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := newRing(nodes, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for traj := 0; traj < 80_000; traj++ {
		o := r.owner(traj)
		if o == "" {
			t.Fatalf("traj %d: no owner", traj)
		}
		counts[o]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns nothing: %v", n, counts)
		}
	}
}

func TestRingSlotWidthGroupsNeighbors(t *testing.T) {
	r, err := newRing([]string{"http://a:1", "http://b:2"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// All trajectories of one slot share an owner.
	for slot := 0; slot < 50; slot++ {
		want := r.owner(slot * 100)
		for _, off := range []int{1, 50, 99} {
			if got := r.owner(slot*100 + off); got != want {
				t.Fatalf("slot %d: traj %d owner %q != %q", slot, slot*100+off, got, want)
			}
		}
	}
}

func TestRingFingerprintSensitivity(t *testing.T) {
	base, err := newRing([]string{"http://a:1", "http://b:2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	diffNodes, err := newRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	diffSlot, err := newRing([]string{"http://a:1", "http://b:2"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if base.fingerprint() == diffNodes.fingerprint() {
		t.Fatal("fingerprint insensitive to node set")
	}
	if base.fingerprint() == diffSlot.fingerprint() {
		t.Fatal("fingerprint insensitive to slot width")
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := newRing(nil, 16); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := newRing([]string{"http://a:1", ""}, 16); err == nil {
		t.Fatal("empty node address accepted")
	}
}

func TestClusterNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "", Peers: []string{"http://b:2"}}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "http://a:1"}); err == nil {
		t.Fatal("peerless cluster accepted")
	}
	// Self listed among peers (common with a shared -peer list) dedups.
	c, err := New(Config{Self: "http://a:1/", Peers: []string{"http://a:1", "http://b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Peers(); len(got) != 1 || got[0] != "http://b:2" {
		t.Fatalf("peers = %v, want [http://b:2]", got)
	}
	if got := len(c.Nodes()); got != 2 {
		t.Fatalf("nodes = %d, want 2", got)
	}
	if c.SlotTrajectories() != DefaultSlotTrajectories {
		t.Fatalf("slot width = %d, want default", c.SlotTrajectories())
	}
}

func TestClusterOwnershipPartitions(t *testing.T) {
	// Each trajectory is owned by exactly one node: the union of every
	// node's Owns() view covers each ID once.
	addrs := []string{"http://a:1", "http://b:2", "http://c:3"}
	views := make([]*Cluster, len(addrs))
	for i, self := range addrs {
		var peers []string
		for j, p := range addrs {
			if j != i {
				peers = append(peers, p)
			}
		}
		c, err := New(Config{Self: self, Peers: peers, SlotTrajectories: 4})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = c
	}
	for traj := 0; traj < 4_000; traj++ {
		owners := 0
		for _, v := range views {
			if v.Owns(traj) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("traj %d owned by %d nodes", traj, owners)
		}
	}
	for i := 1; i < len(views); i++ {
		if views[i].Fingerprint() != views[0].Fingerprint() {
			t.Fatal("views disagree on fingerprint")
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node%d:8080", i)
	}
	r, err := newRing(nodes, DefaultSlotTrajectories)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		_ = r.owner(i)
	}
}
