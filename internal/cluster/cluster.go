package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config declares a node's place in a static cluster. Self and Peers
// are base URLs ("http://host:port"); every node of the cluster must
// be configured with the same total node set (each one's Self plus its
// Peers) and the same SlotTrajectories, or scoped requests are refused
// by the ring-fingerprint check.
type Config struct {
	// Self is this node's advertised base URL — the identity peers
	// route to and cursors embed. Required.
	Self string
	// Peers are the other nodes' base URLs.
	Peers []string
	// SlotTrajectories is the routing granularity (trajectories per
	// consistent-hash slot). 0 means DefaultSlotTrajectories. Must
	// agree across the cluster.
	SlotTrajectories int
	// Timeout bounds each remote page attempt. 0 means 2s.
	Timeout time.Duration
	// RetryBackoff is the pause before the single retry of a failed
	// attempt. 0 means 100ms.
	RetryBackoff time.Duration
	// HedgeAfter fixes the hedged-read delay: when a page fetch has
	// been in flight this long, a second identical request is issued
	// and the first response wins. 0 derives the delay from the
	// peer's observed p99 latency (no hedging until enough samples);
	// negative disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the health-probe cadence of Start. 0 means 5s.
	ProbeInterval time.Duration
	// HTTPClient issues peer requests; nil uses a private client
	// (connection pooling matters for fan-out, so the default is not
	// http.DefaultClient).
	HTTPClient *http.Client
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

func (c Config) backoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 100 * time.Millisecond
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 5 * time.Second
}

// FetchEvent describes one completed peer HTTP attempt; the engine
// registers an observer to turn these into per-peer metrics.
type FetchEvent struct {
	Peer     string
	Duration time.Duration
	Err      error
	// Hedged marks an attempt issued by the hedging timer rather than
	// the primary path.
	Hedged bool
}

// PeerHealth is one peer's observed state, surfaced in /v1/indexes.
type PeerHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// LastError is the most recent probe or fetch failure ("" when the
	// last contact succeeded).
	LastError string `json:"lastError,omitempty"`
	// LastContactUnix is when the peer last answered anything
	// (0 = never).
	LastContactUnix int64 `json:"lastContactUnix,omitempty"`
	// Requests/Errors/Hedges count page-fetch attempts against the
	// peer since startup.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Hedges   uint64 `json:"hedges"`
	// P50Millis/P99Millis are latency quantiles over the recent
	// successful attempts (0 until there are samples).
	P50Millis float64 `json:"p50Millis,omitempty"`
	P99Millis float64 `json:"p99Millis,omitempty"`
}

// latSamples is the per-peer latency window the hedge delay and the
// health report derive their quantiles from.
const latSamples = 256

// peerState is the mutable per-peer record.
type peerState struct {
	mu          sync.Mutex
	healthy     bool
	lastErr     string
	lastContact time.Time
	requests    uint64
	errors      uint64
	hedges      uint64
	// lat is a ring buffer of recent successful attempt durations.
	lat  [latSamples]time.Duration
	latN int // total samples ever; lat[i%latSamples] is valid for i < latN
}

func (p *peerState) record(d time.Duration, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	if err != nil {
		p.errors++
		p.healthy = false
		p.lastErr = err.Error()
		return
	}
	p.healthy = true
	p.lastErr = ""
	p.lastContact = time.Now()
	p.lat[p.latN%latSamples] = d
	p.latN++
}

func (p *peerState) markProbe(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.healthy = false
		p.lastErr = err.Error()
		return
	}
	p.healthy = true
	p.lastErr = ""
	p.lastContact = time.Now()
}

// quantiles returns (p50, p99) over the sample window, or zeros
// without samples.
func (p *peerState) quantiles() (p50, p99 time.Duration) {
	p.mu.Lock()
	n := p.latN
	if n > latSamples {
		n = latSamples
	}
	buf := make([]time.Duration, n)
	copy(buf, p.lat[:n])
	p.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[n/2], buf[(n*99)/100]
}

// Cluster is one node's view of the static peer set: the routing ring,
// per-peer health/latency state, and the page fetcher. Safe for
// concurrent use.
type Cluster struct {
	cfg   Config
	ring  *ring
	self  string
	peers []string // sorted, excluding self
	state map[string]*peerState
	hc    *http.Client

	obsMu    sync.RWMutex
	observer func(FetchEvent)

	stopOnce sync.Once
	done     chan struct{}
	bg       sync.WaitGroup
}

// New validates the config and builds the node's cluster view.
func New(cfg Config) (*Cluster, error) {
	self := normalizeAddr(cfg.Self)
	if self == "" {
		return nil, fmt.Errorf("cluster: Self address is required")
	}
	nodes := []string{self}
	for _, p := range cfg.Peers {
		p = normalizeAddr(p)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if p != self {
			nodes = append(nodes, p)
		}
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("cluster: need at least one peer besides self")
	}
	r, err := newRing(nodes, cfg.SlotTrajectories)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		ring:  r,
		self:  self,
		state: make(map[string]*peerState),
		hc:    cfg.HTTPClient,
		done:  make(chan struct{}),
	}
	if c.hc == nil {
		c.hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	for _, n := range r.nodes {
		if n == self {
			continue
		}
		c.peers = append(c.peers, n)
		c.state[n] = &peerState{}
	}
	return c, nil
}

// normalizeAddr canonicalizes a node URL so "http://a:1/" and
// "http://a:1" are the same ring member.
func normalizeAddr(a string) string {
	return strings.TrimRight(strings.TrimSpace(a), "/")
}

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the other nodes, sorted.
func (c *Cluster) Peers() []string { return append([]string(nil), c.peers...) }

// Nodes returns the full node set (self included), sorted.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.ring.nodes...) }

// SlotTrajectories returns the routing slot width.
func (c *Cluster) SlotTrajectories() int { return c.ring.slotW }

// Fingerprint identifies the (node set, slot width) configuration.
func (c *Cluster) Fingerprint() uint64 { return c.ring.fingerprint() }

// Owns reports whether this node owns trajectory id.
func (c *Cluster) Owns(id int) bool { return c.ring.owner(id) == c.self }

// OwnerOf returns the node owning trajectory id.
func (c *Cluster) OwnerOf(id int) string { return c.ring.owner(id) }

// SetObserver installs the per-attempt callback (the engine's metrics
// bridge). Pass nil to remove it.
func (c *Cluster) SetObserver(fn func(FetchEvent)) {
	c.obsMu.Lock()
	c.observer = fn
	c.obsMu.Unlock()
}

func (c *Cluster) observe(ev FetchEvent) {
	c.obsMu.RLock()
	fn := c.observer
	c.obsMu.RUnlock()
	if fn != nil {
		fn(ev)
	}
}

// Health reports every peer's observed state, sorted by address.
func (c *Cluster) Health() []PeerHealth {
	out := make([]PeerHealth, 0, len(c.peers))
	for _, addr := range c.peers {
		st := c.state[addr]
		st.mu.Lock()
		h := PeerHealth{
			Addr:      addr,
			Healthy:   st.healthy,
			LastError: st.lastErr,
			Requests:  st.requests,
			Errors:    st.errors,
			Hedges:    st.hedges,
		}
		if !st.lastContact.IsZero() {
			h.LastContactUnix = st.lastContact.Unix()
		}
		st.mu.Unlock()
		p50, p99 := st.quantiles()
		h.P50Millis = float64(p50) / float64(time.Millisecond)
		h.P99Millis = float64(p99) / float64(time.Millisecond)
		out = append(out, h)
	}
	return out
}

// Start launches the background health-probe loop (GET /v1/indexes
// against every peer on the probe cadence). Stop ends it.
func (c *Cluster) Start() {
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		c.probeAll()
		t := time.NewTicker(c.cfg.probeInterval())
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop ends the probe loop; idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.done) })
	c.bg.Wait()
}

func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, addr := range c.peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.state[addr].markProbe(c.probe(addr))
		}(addr)
	}
	wg.Wait()
}

func (c *Cluster) probe(addr string) error {
	req, err := http.NewRequest(http.MethodGet, addr+"/v1/indexes", nil)
	if err != nil {
		return err
	}
	hc := *c.hc
	hc.Timeout = c.cfg.timeout()
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close() //nolint:errcheck // health probe; the status is the signal
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: probe %s: HTTP %d", addr, resp.StatusCode)
	}
	return nil
}

// hedgeDelay returns the delay before a hedged second request to addr:
// the configured fixed delay, or the peer's observed p99 (adaptive
// mode). 0 disables hedging for this fetch.
func (c *Cluster) hedgeDelay(addr string) time.Duration {
	switch {
	case c.cfg.HedgeAfter > 0:
		return c.cfg.HedgeAfter
	case c.cfg.HedgeAfter < 0:
		return 0
	}
	st := c.state[addr]
	st.mu.Lock()
	n := st.latN
	st.mu.Unlock()
	// Adaptive hedging needs a meaningful p99; below that, every
	// request would hedge on noise.
	if n < 32 {
		return 0
	}
	_, p99 := st.quantiles()
	if p99 <= 0 {
		return 0
	}
	return p99
}
