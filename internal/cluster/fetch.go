package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cinct/internal/wire"
)

// Scoped request headers. ScopeHeader marks a fan-out leg so the peer
// answers only from trajectories it owns and never fans out again;
// RingHeader carries the sender's ring fingerprint so two nodes with
// diverging -peer flags refuse to cooperate instead of silently
// double- or under-counting.
const (
	ScopeHeader = "X-CiNCT-Scope"
	RingHeader  = "X-CiNCT-Ring"
	ScopeOwned  = "owned"
)

// PartialHeader is the response header a coordinator sets on a
// partial-result failure (HTTP 502): a comma-joined list of the peers
// it could not reach.
const PartialHeader = "X-CiNCT-Partial"

// HTTPError is a non-2xx peer response. The engine maps Status 410 to
// ErrStaleCursor (the peer's index changed under a resumed cursor) and
// treats >= 500 as transient (retried once, then counted toward
// ErrPartial).
type HTTPError struct {
	Peer   string
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("cluster: %s: HTTP %d: %s", e.Peer, e.Status, e.Msg)
}

// FetchPage requests one owned-scope page of index from peer. It
// bounds each attempt with the configured timeout, retries once (after
// backoff) on transient failures — transport errors and 5xx — and, when
// a hedge delay applies, races a second identical request after that
// delay, first success winning. 4xx statuses return *HTTPError
// immediately: they are the peer speaking, not the network failing.
func (c *Cluster) FetchPage(ctx context.Context, peer, index string, req wire.Request) (*wire.Page, error) {
	page, err := c.fetchHedged(ctx, peer, index, req)
	if err == nil || !transientErr(err) {
		return page, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(c.cfg.backoff()):
	}
	return c.fetchHedged(ctx, peer, index, req)
}

type fetchResult struct {
	page *wire.Page
	err  error
}

// fetchHedged runs one logical attempt: the primary request plus, if
// the hedge delay fires first, a racing duplicate. First success wins
// and cancels the loser; if everything fails, the first error is
// returned (the primary's, unless the hedge finished first).
func (c *Cluster) fetchHedged(ctx context.Context, peer, index string, req wire.Request) (*wire.Page, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan fetchResult, 2)
	outstanding := 1
	go func() {
		p, err := c.attempt(actx, peer, index, req, false)
		ch <- fetchResult{p, err}
	}()

	var hedge <-chan time.Time
	if d := c.hedgeDelay(peer); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.page, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			st := c.state[peer]
			st.mu.Lock()
			st.hedges++
			st.mu.Unlock()
			outstanding++
			go func() {
				p, err := c.attempt(actx, peer, index, req, true)
				ch <- fetchResult{p, err}
			}()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt issues one HTTP request and decodes the page, recording the
// outcome in the peer's health state and the observer. A 4xx means the
// peer is alive and answering, so it does not mark the peer unhealthy;
// transport errors and 5xx do.
func (c *Cluster) attempt(ctx context.Context, peer, index string, req wire.Request, hedged bool) (*wire.Page, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode request: %w", err)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.timeout())
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost,
		peer+"/v1/"+url.PathEscape(index)+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ScopeHeader, ScopeOwned)
	hreq.Header.Set(RingHeader, strconv.FormatUint(c.ring.fingerprint(), 10))

	start := time.Now()
	page, err := c.do(hreq, peer)
	d := time.Since(start)

	st := c.state[peer]
	var he *HTTPError
	if err != nil && errors.As(err, &he) && he.Status < 500 {
		// The peer answered; only the request was rejected. Healthy,
		// but no latency sample: error responses are not
		// representative of page-serving latency.
		st.markProbe(nil)
	} else {
		st.record(d, err)
	}
	c.observe(FetchEvent{Peer: peer, Duration: d, Err: err, Hedged: hedged})
	return page, err
}

func (c *Cluster) do(hreq *http.Request, peer string) (*wire.Page, error) {
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-side close
	if resp.StatusCode != http.StatusOK {
		return nil, &HTTPError{Peer: peer, Status: resp.StatusCode, Msg: errorMessage(resp.Body)}
	}
	return wire.ReadPage(resp.Body)
}

// errorMessage extracts the server's {"error": "..."} body, falling
// back to the raw text.
func errorMessage(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return er.Error
	}
	return string(bytes.TrimSpace(raw))
}

// transientErr reports whether a fetch failure is worth the single
// retry: transport-level errors and 5xx are; 4xx and mid-stream
// semantic errors are the peer's answer and retrying cannot change it.
func transientErr(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500
	}
	var se *wire.StreamError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}
