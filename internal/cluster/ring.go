// Package cluster implements phase-1 cluster mode: a static peer set
// declared at startup, consistent routing of global trajectory IDs to
// nodes, and a robust page fetcher (per-peer timeout, one retry with
// backoff, hedged reads) that the engine's scatter-gather search uses
// to stream remote shards through the existing NDJSON query endpoint.
//
// Phase 1 assumes every node serves the same corpus files (the
// operator ships identical index files to each node); routing decides
// *ownership*, so each trajectory's hits are produced by exactly one
// node and the coordinator's k-way merge reassembles the canonical
// stream byte-identical to single-node serving. Replication and
// gossiped membership (the networkdb design) are later phases.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultSlotTrajectories is the routing granularity: trajectory IDs
// are grouped into fixed-width slots and each slot is assigned to one
// node on the hash ring. Wider slots keep per-shard locality; the
// width must agree across every node of a cluster (it is part of the
// ring fingerprint, so mismatches are detected, not silently wrong).
const DefaultSlotTrajectories = 1024

// vnodesPerNode is the number of virtual points each node contributes
// to the ring; enough to keep the slot distribution within a few
// percent of even for small static clusters.
const vnodesPerNode = 64

// ring is a consistent-hash ring over the cluster's node set. It is
// immutable after construction: phase 1 clusters are static.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, deduplicated
	slotW  int         // trajectories per routing slot
	fp     uint64      // fingerprint of (nodes, slotW)
}

type ringPoint struct {
	h    uint64
	node string
}

// newRing builds the ring over the sorted, deduplicated node set.
// Every member of a cluster builds an identical ring from the same
// (self + peers) set, whatever order its flags were given in.
func newRing(nodes []string, slotW int) (*ring, error) {
	if slotW <= 0 {
		slotW = DefaultSlotTrajectories
	}
	set := make(map[string]struct{}, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if _, dup := set[n]; dup {
			continue
		}
		set[n] = struct{}{}
		uniq = append(uniq, n)
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	sort.Strings(uniq)
	r := &ring{nodes: uniq, slotW: slotW}
	r.points = make([]ringPoint, 0, len(uniq)*vnodesPerNode)
	for _, n := range uniq {
		for i := 0; i < vnodesPerNode; i++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties (vanishingly rare) break by node name so every
		// member resolves them identically.
		return r.points[i].node < r.points[j].node
	})
	h := fnv.New64a()
	for _, n := range uniq {
		fmt.Fprintf(h, "%s\x00", n)
	}
	fmt.Fprintf(h, "|%d", slotW)
	r.fp = h.Sum64()
	return r, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return mix64(h.Sum64())
}

// mix64 is splitmix64's avalanche finalizer. Raw FNV of sequential
// keys ("slot-0", "slot-1", …) differs only in the last processed
// byte, leaving the hashes within a band of ~16 primes of each other —
// a sliver of the 2^64 ring that one node's nearest vnode then owns
// wholesale. The finalizer spreads that band over the whole ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner returns the node owning a trajectory ID: the first ring point
// clockwise from the hash of the ID's slot.
func (r *ring) owner(traj int) string {
	if traj < 0 {
		traj = 0
	}
	slot := uint64(traj) / uint64(r.slotW)
	h := hash64(fmt.Sprintf("slot-%d", slot))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// fingerprint identifies the (node set, slot width) pair; cluster
// cursors embed it so a resume against a differently-configured
// cluster fails typed instead of merging misrouted pages, and scoped
// requests carry it so two nodes with diverging peer flags refuse to
// cooperate.
func (r *ring) fingerprint() uint64 { return r.fp }
