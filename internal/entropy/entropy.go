// Package entropy computes the empirical entropy measures used
// throughout the paper's analysis and evaluation: the 0th order
// empirical entropy H0 (Eq. 3), the k-th order empirical entropy Hk
// (Eq. 4), and bigram/unigram statistics of sequences.
package entropy

import "math"

// H0 returns the 0th order empirical entropy of seq in bits per symbol
// (Eq. 3): sum over symbols w of (n_w/n) lg(n/n_w). An empty sequence
// has entropy 0.
func H0(seq []uint32) float64 {
	if len(seq) == 0 {
		return 0
	}
	counts := make(map[uint32]int, 64)
	for _, s := range seq {
		counts[s]++
	}
	return h0Counts(counts, len(seq))
}

// H0Freqs is H0 computed from a frequency histogram.
func H0Freqs(freqs []uint64) float64 {
	var n uint64
	for _, f := range freqs {
		n += f
	}
	if n == 0 {
		return 0
	}
	var h float64
	for _, f := range freqs {
		if f > 0 {
			p := float64(f) / float64(n)
			h -= p * math.Log2(p)
		}
	}
	return h
}

func h0Counts(counts map[uint32]int, n int) float64 {
	var h float64
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// Hk returns the k-th order empirical entropy of seq (Eq. 4): the
// average, over length-k contexts W, of H0 of the symbols that follow
// W, weighted by context frequency. Hk(seq) for k=0 equals H0(seq).
//
// Contexts are the k symbols *preceding* each position, matching
// Manzini's definition used by the paper (the first k positions have
// truncated contexts and are grouped by their short prefix).
func Hk(seq []uint32, k int) float64 {
	n := len(seq)
	if n == 0 {
		return 0
	}
	if k <= 0 {
		return H0(seq)
	}
	type ctxStat struct {
		counts map[uint32]int
		total  int
	}
	ctxs := make(map[string]*ctxStat, 1024)
	key := make([]byte, 0, 4*k)
	for i := 0; i < n; i++ {
		key = key[:0]
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			c := seq[j]
			key = append(key, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		cs := ctxs[string(key)]
		if cs == nil {
			cs = &ctxStat{counts: make(map[uint32]int, 4)}
			ctxs[string(key)] = cs
		}
		cs.counts[seq[i]]++
		cs.total++
	}
	var h float64
	for _, cs := range ctxs {
		h += float64(cs.total) / float64(n) * h0Counts(cs.counts, cs.total)
	}
	return h
}

// Bigrams counts the occurrences of each adjacent pair (seq[i],
// seq[i+1]), optionally including the cyclic wraparound pair
// (seq[n−1], seq[0]) — the ET-graph construction needs the wraparound
// so the BWT row of the full-string rotation is labelable.
func Bigrams(seq []uint32, cyclic bool) map[[2]uint32]int {
	out := make(map[[2]uint32]int, 1024)
	n := len(seq)
	for i := 0; i+1 < n; i++ {
		out[[2]uint32{seq[i], seq[i+1]}]++
	}
	if cyclic && n > 1 {
		out[[2]uint32{seq[n-1], seq[0]}]++
	}
	return out
}

// Unigrams counts symbol occurrences.
func Unigrams(seq []uint32) map[uint32]int {
	out := make(map[uint32]int, 256)
	for _, s := range seq {
		out[s]++
	}
	return out
}
