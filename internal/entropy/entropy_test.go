package entropy

import (
	"math"
	"math/rand"
	"testing"
)

func TestH0Uniform(t *testing.T) {
	// Uniform over 2^k symbols has H0 = k exactly.
	seq := make([]uint32, 0, 1024)
	for i := 0; i < 64; i++ {
		for c := uint32(0); c < 16; c++ {
			seq = append(seq, c)
		}
	}
	if h := H0(seq); math.Abs(h-4) > 1e-12 {
		t.Fatalf("H0(uniform over 16) = %v, want 4", h)
	}
}

func TestH0Constant(t *testing.T) {
	seq := []uint32{7, 7, 7, 7}
	if h := H0(seq); h != 0 {
		t.Fatalf("H0(constant) = %v, want 0", h)
	}
	if h := H0(nil); h != 0 {
		t.Fatalf("H0(empty) = %v, want 0", h)
	}
}

func TestH0FreqsMatchesH0(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := make([]uint32, 5000)
	freqs := make([]uint64, 20)
	for i := range seq {
		seq[i] = uint32(rng.Intn(20))
		freqs[seq[i]]++
	}
	if a, b := H0(seq), H0Freqs(freqs); math.Abs(a-b) > 1e-12 {
		t.Fatalf("H0=%v H0Freqs=%v", a, b)
	}
}

func TestHkDecreasesWithK(t *testing.T) {
	// Hk is non-increasing in k (Manzini). Use a sequence with strong
	// first-order structure: a noisy alternation.
	rng := rand.New(rand.NewSource(2))
	seq := make([]uint32, 20000)
	cur := uint32(0)
	for i := range seq {
		if rng.Float64() < 0.05 {
			cur = uint32(rng.Intn(4))
		} else {
			cur = (cur + 1) % 4
		}
		seq[i] = cur
	}
	h0 := Hk(seq, 0)
	h1 := Hk(seq, 1)
	h2 := Hk(seq, 2)
	if h1 > h0+1e-9 || h2 > h1+1e-9 {
		t.Fatalf("Hk not non-increasing: H0=%v H1=%v H2=%v", h0, h1, h2)
	}
	// The alternation means H1 should be far below H0.
	if h1 > 0.6*h0 {
		t.Fatalf("expected strong first-order structure: H0=%v H1=%v", h0, h1)
	}
}

func TestHkZeroEqualsH0(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := make([]uint32, 3000)
	for i := range seq {
		seq[i] = uint32(rng.Intn(9))
	}
	if a, b := Hk(seq, 0), H0(seq); math.Abs(a-b) > 1e-12 {
		t.Fatalf("Hk(·,0)=%v H0=%v", a, b)
	}
}

func TestHkDeterministicSequenceIsZero(t *testing.T) {
	// A purely periodic sequence has H1 ≈ 0 (each context determines
	// its successor, except the truncated first context).
	seq := make([]uint32, 10000)
	for i := range seq {
		seq[i] = uint32(i % 5)
	}
	if h := Hk(seq, 1); h > 0.01 {
		t.Fatalf("H1(periodic) = %v, want ~0", h)
	}
}

func TestBigrams(t *testing.T) {
	seq := []uint32{1, 2, 1, 2, 3}
	bg := Bigrams(seq, false)
	if bg[[2]uint32{1, 2}] != 2 || bg[[2]uint32{2, 1}] != 1 || bg[[2]uint32{2, 3}] != 1 {
		t.Fatalf("unexpected bigrams: %v", bg)
	}
	if len(bg) != 3 {
		t.Fatalf("expected 3 distinct bigrams, got %d", len(bg))
	}
	bgc := Bigrams(seq, true)
	if bgc[[2]uint32{3, 1}] != 1 {
		t.Fatal("cyclic bigram missing")
	}
	if total := len(Bigrams([]uint32{5}, true)); total != 0 {
		t.Fatal("single-element cyclic bigrams should be empty")
	}
}

func TestUnigrams(t *testing.T) {
	u := Unigrams([]uint32{4, 4, 2})
	if u[4] != 2 || u[2] != 1 {
		t.Fatalf("unexpected unigrams: %v", u)
	}
}
