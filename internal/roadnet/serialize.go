package roadnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// The CNCTroad container persists a Graph so daemons can serve a road
// network they did not generate. Layout (little-endian):
//
//	magic   [8]byte  "CNCTroad"
//	version uint32   (1)
//	nodes   uint32
//	edges   uint32
//	per node: X, Y float64
//	per edge: from, to uint32
//
// Edges are written in EdgeID order and New assigns IDs in arc order,
// so a round trip preserves every EdgeID — the property the trajectory
// indexes built on those IDs depend on.
const (
	roadMagic   = "CNCTroad"
	roadVersion = 1

	// maxRoadElems bounds the node/edge counts a loader will size
	// buffers for, so a corrupt header cannot demand a giant
	// allocation before the (length-checked) body is read.
	maxRoadElems = 1 << 28
)

// ErrCorrupt reports a CNCTroad container that failed validation.
var ErrCorrupt = errors.New("roadnet: corrupt container")

// Save writes the graph as a CNCTroad container.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(roadMagic); err != nil {
		return err
	}
	var u32 [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := put(roadVersion); err != nil {
		return err
	}
	if err := put(uint32(len(g.Nodes))); err != nil {
		return err
	}
	if err := put(uint32(len(g.Edges))); err != nil {
		return err
	}
	var f64 [8]byte
	for _, n := range g.Nodes {
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(n.X))
		if _, err := bw.Write(f64[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(n.Y))
		if _, err := bw.Write(f64[:]); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if err := put(uint32(e.From)); err != nil {
			return err
		}
		if err := put(uint32(e.To)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the graph to path via Save.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a CNCTroad container, validating every structural claim
// (magic, version, counts, endpoint ranges, finite coordinates) before
// reconstructing the graph. Structural damage returns an error
// wrapping ErrCorrupt, never a panic.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	if string(magic[:]) != roadMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	var u32 [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated: %v", ErrCorrupt, err)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != roadVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	nNodes, err := get()
	if err != nil {
		return nil, err
	}
	nEdges, err := get()
	if err != nil {
		return nil, err
	}
	if nNodes > maxRoadElems || nEdges > maxRoadElems {
		return nil, fmt.Errorf("%w: implausible counts %d nodes / %d edges", ErrCorrupt, nNodes, nEdges)
	}
	// Grow the tables as the body is actually read (capped initial
	// capacity) so a corrupt header claiming 2^28 elements cannot
	// demand gigabytes before the first truncated read fails.
	nodes := make([]Node, 0, min(int(nNodes), 1<<16))
	var f64 [8]byte
	getF := func() (float64, error) {
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated node table: %v", ErrCorrupt, err)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%w: non-finite coordinate", ErrCorrupt)
		}
		return v, nil
	}
	for i := 0; i < int(nNodes); i++ {
		var n Node
		if n.X, err = getF(); err != nil {
			return nil, err
		}
		if n.Y, err = getF(); err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	arcs := make([][2]NodeID, 0, min(int(nEdges), 1<<16))
	for i := 0; i < int(nEdges); i++ {
		from, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated edge table: %v", ErrCorrupt, err)
		}
		to, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated edge table: %v", ErrCorrupt, err)
		}
		if from >= nNodes || to >= nNodes {
			return nil, fmt.Errorf("%w: edge %d endpoints (%d,%d) out of range (%d nodes)", ErrCorrupt, i, from, to, nNodes)
		}
		arcs = append(arcs, [2]NodeID{NodeID(from), NodeID(to)})
	}
	// Reject trailing garbage: the container is self-describing, so
	// extra bytes mean the header lied about the counts.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after edge table", ErrCorrupt)
	}
	return New(nodes, arcs), nil
}

// LoadFile reads a CNCTroad container from path via Load.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
