package roadnet

import (
	"math"
	"testing"
)

func TestGridBasicShape(t *testing.T) {
	g := Grid(5, 4, 1)
	if g.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", g.NumNodes())
	}
	// Full grid would have 2*(4*4 + 5*3) = 62 directed edges; ~7% of
	// interior streets are dropped so expect a bit fewer.
	if g.NumEdges() < 40 || g.NumEdges() > 62 {
		t.Fatalf("NumEdges = %d, want within [40,62]", g.NumEdges())
	}
	for _, e := range g.Edges {
		if e.Length <= 0 {
			t.Fatalf("edge %d has non-positive length", e.ID)
		}
		if e.From == e.To {
			t.Fatalf("edge %d is a self-loop", e.ID)
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	a := Grid(6, 6, 42)
	b := Grid(6, 6, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should give identical graphs")
	}
	c := Grid(6, 6, 43)
	_ = c // different seed may coincide in edge count; just ensure no panic
}

func TestOutInConsistency(t *testing.T) {
	g := Grid(5, 5, 2)
	outTotal, inTotal := 0, 0
	for n := NodeID(0); int(n) < g.NumNodes(); n++ {
		outTotal += len(g.OutEdgesOf(n))
		inTotal += len(g.InEdgesOf(n))
		for _, e := range g.OutEdgesOf(n) {
			if g.Edges[e].From != n {
				t.Fatalf("edge %d in out-list of %d but From=%d", e, n, g.Edges[e].From)
			}
		}
		for _, e := range g.InEdgesOf(n) {
			if g.Edges[e].To != n {
				t.Fatalf("edge %d in in-list of %d but To=%d", e, n, g.Edges[e].To)
			}
		}
	}
	if outTotal != g.NumEdges() || inTotal != g.NumEdges() {
		t.Fatalf("out/in totals %d/%d, want %d", outTotal, inTotal, g.NumEdges())
	}
}

func TestNextEdgesAndReverse(t *testing.T) {
	g := Grid(4, 4, 3)
	for _, e := range g.Edges {
		for _, nx := range g.NextEdges(e.ID) {
			if g.Edges[nx].From != e.To {
				t.Fatalf("NextEdges(%d) includes disconnected edge %d", e.ID, nx)
			}
		}
		if r, ok := g.Reverse(e.ID); ok {
			if g.Edges[r].From != e.To || g.Edges[r].To != e.From {
				t.Fatalf("Reverse(%d) = %d is not the reverse", e.ID, r)
			}
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	g := Grid(8, 8, 4)
	// Path from corner to corner must exist and be connected.
	from, to := NodeID(0), NodeID(63)
	path, dist, ok := g.ShortestPath(from, to)
	if !ok || len(path) == 0 {
		t.Fatal("corner-to-corner path should exist")
	}
	if g.Edges[path[0]].From != from || g.Edges[path[len(path)-1]].To != to {
		t.Fatal("path endpoints wrong")
	}
	sum := 0.0
	for i, e := range path {
		sum += g.Edges[e].Length
		if i > 0 && g.Edges[path[i-1]].To != g.Edges[e].From {
			t.Fatalf("path disconnected at %d", i)
		}
	}
	if math.Abs(sum-dist) > 1e-9 {
		t.Fatalf("reported dist %v != edge sum %v", dist, sum)
	}
	// Triangle inequality against any single-hop neighbors.
	if dist <= 0 {
		t.Fatal("non-trivial path must have positive length")
	}
	// Self path.
	p, d, ok := g.ShortestPath(from, from)
	if !ok || len(p) != 0 || d != 0 {
		t.Fatal("self path should be empty with zero distance")
	}
}

func TestShortestPathIsOptimalOnSmallGraph(t *testing.T) {
	// Hand-built diamond: 0->1->3 (lengths 1+1), 0->2->3 (1+10 by
	// coordinates). The short branch must win.
	nodes := []Node{{0, 0}, {1, 0}, {0, 5}, {2, 0}}
	arcs := [][2]NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}}
	g := New(nodes, arcs)
	path, dist, ok := g.ShortestPath(0, 3)
	if !ok || len(path) != 2 {
		t.Fatalf("path = %v, ok=%v", path, ok)
	}
	if g.Edges[path[0]].To != 1 {
		t.Fatal("Dijkstra picked the long branch")
	}
	if dist >= 5 {
		t.Fatalf("dist = %v, want ~2", dist)
	}
}

func TestUnreachable(t *testing.T) {
	nodes := []Node{{0, 0}, {1, 0}, {5, 5}}
	arcs := [][2]NodeID{{0, 1}} // node 2 isolated
	g := New(nodes, arcs)
	if _, _, ok := g.ShortestPath(0, 2); ok {
		t.Fatal("unreachable node reported reachable")
	}
	// ConnectEdges(0,0) needs a path from edge 0's head back to its
	// tail; the one-way graph has none.
	if _, ok := g.ConnectEdges(0, 0); ok {
		t.Fatal("one-way edge should not connect to itself")
	}
}

func TestConnectEdges(t *testing.T) {
	g := Grid(6, 6, 5)
	a := g.Edges[0]
	// Find an edge whose tail is a's head: directly connected.
	for _, b := range g.NextEdges(a.ID) {
		mid, ok := g.ConnectEdges(a.ID, b)
		if !ok || len(mid) != 0 {
			t.Fatalf("directly connected edges need no interpolation, got %v", mid)
		}
	}
}

func TestGeometryHelpers(t *testing.T) {
	nodes := []Node{{0, 0}, {2, 0}}
	g := New(nodes, [][2]NodeID{{0, 1}})
	if d := g.PointToEdgeDistance(1, 1, 0); math.Abs(d-1) > 1e-9 {
		t.Fatalf("distance to midpoint-above = %v, want 1", d)
	}
	if d := g.PointToEdgeDistance(-1, 0, 0); math.Abs(d-1) > 1e-9 {
		t.Fatalf("distance beyond endpoint = %v, want 1", d)
	}
	x, y := g.PointAlongEdge(0, 0.5)
	if math.Abs(x-1) > 1e-9 || math.Abs(y) > 1e-9 {
		t.Fatalf("PointAlongEdge = (%v,%v), want (1,0)", x, y)
	}
	mx, my := g.EdgeMidpoint(0)
	if math.Abs(mx-1) > 1e-9 || math.Abs(my) > 1e-9 {
		t.Fatalf("EdgeMidpoint = (%v,%v)", mx, my)
	}
	dx, dy := g.Direction(0)
	if math.Abs(dx-1) > 1e-9 || math.Abs(dy) > 1e-9 {
		t.Fatalf("Direction = (%v,%v)", dx, dy)
	}
}

func TestGridPanicsOnTinyDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(1,5) should panic")
		}
	}()
	Grid(1, 5, 0)
}
