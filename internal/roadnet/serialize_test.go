package roadnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func TestRoadnetRoundTrip(t *testing.T) {
	g := Grid(9, 7, 42)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(g.Nodes) || len(got.Edges) != len(g.Edges) {
		t.Fatalf("round trip: %d nodes / %d edges, want %d / %d",
			len(got.Nodes), len(got.Edges), len(g.Nodes), len(g.Edges))
	}
	for i, n := range g.Nodes {
		if got.Nodes[i] != n {
			t.Fatalf("node %d: %v != %v", i, got.Nodes[i], n)
		}
	}
	for i, e := range g.Edges {
		ge := got.Edges[i]
		if ge.ID != e.ID || ge.From != e.From || ge.To != e.To {
			t.Fatalf("edge %d: %+v != %+v", i, ge, e)
		}
		if math.Abs(ge.Length-e.Length) > 1e-12 {
			t.Fatalf("edge %d length: %v != %v", i, ge.Length, e.Length)
		}
	}
	// Adjacency must survive too — the matcher depends on it.
	for _, e := range g.Edges {
		want := g.NextEdges(e.ID)
		gotNext := got.NextEdges(e.ID)
		if len(want) != len(gotNext) {
			t.Fatalf("edge %d: NextEdges %v != %v", e.ID, gotNext, want)
		}
		for i := range want {
			if want[i] != gotNext[i] {
				t.Fatalf("edge %d: NextEdges %v != %v", e.ID, gotNext, want)
			}
		}
	}
}

func TestRoadnetFileRoundTrip(t *testing.T) {
	g := Grid(4, 4, 7)
	path := filepath.Join(t.TempDir(), "net.road")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(g.Edges) {
		t.Fatalf("%d edges, want %d", len(got.Edges), len(g.Edges))
	}
}

func TestRoadnetLoadRejectsCorrupt(t *testing.T) {
	g := Grid(5, 5, 3)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return fn(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", good[:4]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", mutate(func(b []byte) []byte { b[8] = 99; return b })},
		{"truncated header", good[:10]},
		{"truncated node table", good[:20+17]},
		{"truncated edge table", good[:len(good)-3]},
		{"trailing garbage", mutate(func(b []byte) []byte { return append(b, 0xAA) })},
		{"implausible node count", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1<<31)
			return b
		})},
		{"edge endpoint out of range", mutate(func(b []byte) []byte {
			nNodes := binary.LittleEndian.Uint32(b[12:])
			off := 20 + int(nNodes)*16
			binary.LittleEndian.PutUint32(b[off:], nNodes+5)
			return b
		})},
		{"nan coordinate", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[20:], math.Float64bits(math.NaN()))
			return b
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(tc.data)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load = %v, want ErrCorrupt", err)
			}
		})
	}
}

// FuzzLoadRoadnet pins the loader contract: arbitrary bytes produce a
// typed error or a structurally valid graph, never a panic; and any
// accepted input must itself round-trip.
func FuzzLoadRoadnet(f *testing.F) {
	var buf bytes.Buffer
	if err := Grid(3, 3, 1).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(roadMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		for _, e := range g.Edges {
			if int(e.From) >= len(g.Nodes) || int(e.To) >= len(g.Nodes) {
				t.Fatalf("accepted edge %d with out-of-range endpoints", e.ID)
			}
		}
		var out bytes.Buffer
		if err := g.Save(&out); err != nil {
			t.Fatalf("re-save of accepted graph failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted input does not round-trip: %d bytes in, %d out", len(data), out.Len())
		}
	})
}
