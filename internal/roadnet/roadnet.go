// Package roadnet models the road networks that network-constrained
// trajectories live on: a directed graph with embedded node
// coordinates, plus the shortest-path machinery (Dijkstra) that the
// dataset generators, the Singapore-2 gap interpolation, the PRESS
// baseline and the map matcher all rely on.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// NodeID identifies an intersection.
type NodeID int32

// EdgeID identifies a directed road segment — the symbols of an NCT.
type EdgeID uint32

// Node is an intersection with planar coordinates (used by the GPS
// simulation and map matching).
type Node struct {
	X, Y float64
}

// Edge is a directed road segment.
type Edge struct {
	ID     EdgeID
	From   NodeID
	To     NodeID
	Length float64
}

// Graph is a directed road network.
type Graph struct {
	Nodes []Node
	Edges []Edge

	outNode [][]EdgeID // outgoing edge IDs per node
	inNode  [][]EdgeID // incoming edge IDs per node
}

// New assembles a graph from nodes and edge endpoints; lengths are
// Euclidean distances between the endpoint nodes.
func New(nodes []Node, arcs [][2]NodeID) *Graph {
	g := &Graph{
		Nodes:   nodes,
		outNode: make([][]EdgeID, len(nodes)),
		inNode:  make([][]EdgeID, len(nodes)),
	}
	for _, a := range arcs {
		g.addEdge(a[0], a[1])
	}
	return g
}

func (g *Graph) addEdge(from, to NodeID) EdgeID {
	id := EdgeID(len(g.Edges))
	dx := g.Nodes[from].X - g.Nodes[to].X
	dy := g.Nodes[from].Y - g.Nodes[to].Y
	g.Edges = append(g.Edges, Edge{
		ID: id, From: from, To: to, Length: math.Hypot(dx, dy),
	})
	g.outNode[from] = append(g.outNode[from], id)
	g.inNode[to] = append(g.inNode[to], id)
	return id
}

// Grid builds a w×h Manhattan-style city grid with bidirectional
// streets between orthogonal neighbors. Node coordinates are jittered
// slightly (seeded) so edge geometry is not degenerate for the GPS
// simulation. A small fraction of streets is removed (seeded) so the
// network is not perfectly regular, while connectivity is preserved by
// never removing both directions of a street on the grid's spanning
// rows/columns.
func Grid(w, h int, seed int64) *Graph {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("roadnet: grid must be at least 2x2, got %dx%d", w, h))
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]Node, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			nodes[y*w+x] = Node{
				X: float64(x) + 0.2*(rng.Float64()-0.5),
				Y: float64(y) + 0.2*(rng.Float64()-0.5),
			}
		}
	}
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	var arcs [][2]NodeID
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				// Drop ~7% of interior horizontal streets.
				if y == 0 || rng.Float64() >= 0.07 {
					arcs = append(arcs, [2]NodeID{id(x, y), id(x+1, y)})
					arcs = append(arcs, [2]NodeID{id(x+1, y), id(x, y)})
				}
			}
			if y+1 < h {
				if x == 0 || rng.Float64() >= 0.07 {
					arcs = append(arcs, [2]NodeID{id(x, y), id(x, y+1)})
					arcs = append(arcs, [2]NodeID{id(x, y+1), id(x, y)})
				}
			}
		}
	}
	return New(nodes, arcs)
}

// NumNodes returns the intersection count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the road segment count (the NCT alphabet size).
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutEdgesOf returns the edges leaving node n.
func (g *Graph) OutEdgesOf(n NodeID) []EdgeID { return g.outNode[n] }

// InEdgesOf returns the edges entering node n.
func (g *Graph) InEdgesOf(n NodeID) []EdgeID { return g.inNode[n] }

// NextEdges returns the edges a vehicle on e can move to next: the
// out-edges of e's head node.
func (g *Graph) NextEdges(e EdgeID) []EdgeID {
	return g.outNode[g.Edges[e].To]
}

// Reverse returns the opposite-direction edge of e, or (0, false) if
// the street is one-way.
func (g *Graph) Reverse(e EdgeID) (EdgeID, bool) {
	ed := g.Edges[e]
	for _, r := range g.outNode[ed.To] {
		if g.Edges[r].To == ed.From {
			return r, true
		}
	}
	return 0, false
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// ShortestPath returns the node-to-node shortest path as a sequence of
// edges, or ok=false if to is unreachable from from. An empty path with
// ok=true means from == to.
func (g *Graph) ShortestPath(from, to NodeID) (path []EdgeID, dist float64, ok bool) {
	if from == to {
		return nil, 0, true
	}
	distv := make(map[NodeID]float64, 64)
	prevEdge := make(map[NodeID]EdgeID, 64)
	distv[from] = 0
	q := pq{{from, 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > distv[it.node] {
			continue
		}
		if it.node == to {
			break
		}
		for _, eid := range g.outNode[it.node] {
			e := g.Edges[eid]
			nd := it.dist + e.Length
			if cur, seen := distv[e.To]; !seen || nd < cur {
				distv[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(&q, pqItem{e.To, nd})
			}
		}
	}
	d, reached := distv[to]
	if !reached {
		return nil, 0, false
	}
	// Reconstruct backward.
	for at := to; at != from; {
		e := prevEdge[at]
		path = append(path, e)
		at = g.Edges[e].From
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, d, true
}

// ConnectEdges returns the edges needed between two road segments: the
// shortest path from a's head to b's tail, excluding a and b. ok=false
// if no connection exists. An empty path with ok=true means b directly
// follows a.
func (g *Graph) ConnectEdges(a, b EdgeID) ([]EdgeID, bool) {
	path, _, ok := g.ShortestPath(g.Edges[a].To, g.Edges[b].From)
	if !ok {
		return nil, false
	}
	return path, true
}

// EdgeMidpoint returns the planar midpoint of an edge (used by the
// spatial index of the map matcher).
func (g *Graph) EdgeMidpoint(e EdgeID) (x, y float64) {
	ed := g.Edges[e]
	a, b := g.Nodes[ed.From], g.Nodes[ed.To]
	return (a.X + b.X) / 2, (a.Y + b.Y) / 2
}

// PointToEdgeDistance returns the distance from point (x, y) to the
// segment of edge e.
func (g *Graph) PointToEdgeDistance(x, y float64, e EdgeID) float64 {
	ed := g.Edges[e]
	a, b := g.Nodes[ed.From], g.Nodes[ed.To]
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := x-a.X, y-a.Y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	px, py := a.X+t*abx, a.Y+t*aby
	return math.Hypot(x-px, y-py)
}

// PointAlongEdge returns the point at fraction t ∈ [0,1] along edge e.
func (g *Graph) PointAlongEdge(e EdgeID, t float64) (x, y float64) {
	ed := g.Edges[e]
	a, b := g.Nodes[ed.From], g.Nodes[ed.To]
	return a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)
}

// Direction returns the unit direction vector of edge e.
func (g *Graph) Direction(e EdgeID) (dx, dy float64) {
	ed := g.Edges[e]
	a, b := g.Nodes[ed.From], g.Nodes[ed.To]
	dx, dy = b.X-a.X, b.Y-a.Y
	l := math.Hypot(dx, dy)
	if l == 0 {
		return 0, 0
	}
	return dx / l, dy / l
}
