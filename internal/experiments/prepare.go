// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment is a function returning printable
// rows; cmd/experiments renders them and bench_test.go wraps them in
// testing.B benchmarks. DESIGN.md maps experiment IDs to these
// functions.
package experiments

import (
	"fmt"
	"time"

	"cinct/internal/querygen"
	"cinct/internal/suffix"
	"cinct/internal/trajgen"
	"cinct/internal/trajstr"
)

// Scale selects corpus sizes. Quick keeps everything CI-friendly
// (~10^5 symbols per dataset); Full approaches the paper's regime as
// far as a laptop allows (0.25–4M symbols; the paper used 12–193M).
type Scale int

const (
	// Quick is the CI-sized scale.
	Quick Scale = iota
	// Full is the large-run scale.
	Full
)

// config returns the generator configuration for a dataset at this
// scale. The corpus must be large relative to the alphabet (the paper:
// n/σ ≈ 800–1600) or fixed per-structure costs dominate every method,
// so Quick uses a 16×16 grid (σ ≈ 900) with enough trajectories for
// n/σ ≈ 200–400, and Full scales both up.
func (s Scale) config(seed int64, numTrajs, meanLen int) trajgen.Config {
	if s == Full {
		return trajgen.Config{
			GridW: 26, GridH: 26,
			NumTrajs: numTrajs * 20,
			MeanLen:  meanLen,
			Seed:     seed,
		}
	}
	return trajgen.Config{
		GridW: 16, GridH: 16,
		NumTrajs: numTrajs,
		MeanLen:  meanLen,
		Seed:     seed,
	}
}

// Prepared is a dataset with its trajectory string, BWT and suffix
// array precomputed once and shared across all competing indexes.
type Prepared struct {
	Name    string
	Dataset trajgen.Dataset
	Corpus  *trajstr.Corpus
	BWT     []uint32
	SA      []int32
	BWTTime time.Duration
}

// Prepare encodes and transforms a generated dataset.
func Prepare(d trajgen.Dataset) (*Prepared, error) {
	corpus, err := trajstr.New(d.Trajs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
	}
	t0 := time.Now()
	sa := suffix.Array(corpus.Text, corpus.Sigma)
	bwt := suffix.BWT(corpus.Text, sa)
	return &Prepared{
		Name: d.Name, Dataset: d, Corpus: corpus,
		BWT: bwt, SA: sa, BWTTime: time.Since(t0),
	}, nil
}

// PaperDatasets generates and prepares the five dataset analogs of
// Table III.
func PaperDatasets(s Scale) ([]*Prepared, error) {
	romaTrajs := 1200
	if s == Full {
		// Map matching dominates Roma generation; scale it 5x rather
		// than 20x (the matched corpus is the smallest in Table III
		// anyway: 12M vs 53-193M).
		romaTrajs = 300
	}
	gens := []func() trajgen.Dataset{
		func() trajgen.Dataset { return trajgen.Singapore(s.config(101, 4000, 45)) },
		func() trajgen.Dataset { return trajgen.Singapore2(s.config(101, 4000, 45)) },
		func() trajgen.Dataset { return trajgen.Roma(s.config(103, romaTrajs, 40)) },
		func() trajgen.Dataset { return trajgen.MOGen(s.config(104, 5000, 40)) },
		func() trajgen.Dataset { return trajgen.Chess(s.config(105, 15000, 10)) },
	}
	out := make([]*Prepared, 0, len(gens))
	for _, gen := range gens {
		p, err := Prepare(gen())
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SampleQueries draws n sub-paths of the given length from the corpus
// (travel order) and returns them as text-order patterns (reversed,
// internal symbols), exactly the workload of §VI-A3. Trajectories
// shorter than the length are skipped; if the corpus cannot supply
// them, shorter patterns are drawn instead.
func (p *Prepared) SampleQueries(n, length int, seed int64) [][]uint32 {
	s := querygen.NewFixed(p.Dataset.Trajs, length, seed)
	out := make([][]uint32, 0, n)
	for len(out) < n {
		sub := s.Next()
		if sub == nil {
			break
		}
		pat, ok := p.Corpus.ReversedPattern(sub)
		if !ok {
			continue
		}
		out = append(out, pat)
	}
	return out
}
