package experiments

import (
	"time"

	"cinct/internal/core"
	"cinct/internal/etgraph"
	"cinct/internal/fmindex"
	"cinct/internal/wavelet"
)

// Built is one competing index with a uniform query surface, so the
// experiment loops don't care which method is underneath.
type Built struct {
	Name string
	// BitsPerSymbol is the index footprint per text symbol (CiNCT
	// includes its ET-graph; the w/o-graph variant is reported
	// separately in Fig. 10).
	BitsPerSymbol float64
	// Search runs one suffix range query (text-order pattern).
	Search func(pat []uint32) (int64, int64, bool)
	// Extract decompresses l symbols ending before SA[j].
	Extract func(j int64, l int) []uint32
	// Timing breakdown for Fig. 16 (WT = wavelet/sequence build,
	// Graph = ET-graph build incl. labeling and corrections; zero for
	// baselines).
	WTTime    time.Duration
	GraphTime time.Duration
}

// BuildCiNCT builds the proposed index from the shared BWT.
func BuildCiNCT(p *Prepared, block int, strategy etgraph.Strategy, seed int64) (*core.Index, Built) {
	opt := core.Options{
		Spec:     wavelet.RRRSpec(block),
		Strategy: strategy,
		Seed:     seed,
		SASample: 0, // the paper's size/speed experiments index count+extract only
	}
	ix := core.BuildFromBWT(p.Corpus.Text, p.BWT, nil, p.Corpus.Sigma, opt)
	name := "CiNCT"
	if strategy == etgraph.RandomShuffle {
		name = "CiNCT-rand"
	}
	return ix, Built{
		Name:          name,
		BitsPerSymbol: ix.BitsPerSymbol(true),
		Search:        ix.SuffixRange,
		Extract:       ix.Extract,
		WTTime:        ix.Stats.WT,
		GraphTime:     ix.Stats.ETGraph,
	}
}

// CiNCTWithoutGraphBits returns the Fig. 10 "CiNCT (w/o ET-graph)"
// size for an already built index.
func CiNCTWithoutGraphBits(ix *core.Index) float64 { return ix.BitsPerSymbol(false) }

// BuildBaseline builds one Table II competitor from the shared BWT.
func BuildBaseline(p *Prepared, m fmindex.Method, block int) Built {
	ix := fmindex.BuildFromBWT(p.BWT, p.Corpus.Sigma, m, block)
	return Built{
		Name:          m.String(),
		BitsPerSymbol: ix.BitsPerSymbol(),
		Search:        ix.SuffixRange,
		Extract:       ix.Extract,
		WTTime:        ix.Stats.WT,
	}
}

// BuildAll builds CiNCT plus every baseline at the given block size.
func BuildAll(p *Prepared, block int) []Built {
	_, cinct := BuildCiNCT(p, block, etgraph.BigramSorted, 0)
	out := []Built{cinct}
	for _, m := range fmindex.Methods {
		out = append(out, BuildBaseline(p, m, block))
	}
	return out
}

// TimeSearch measures the average time of one suffix range query over
// the workload, in nanoseconds.
func TimeSearch(b Built, queries [][]uint32) float64 {
	t0 := time.Now()
	for _, q := range queries {
		b.Search(q)
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(len(queries))
}

// TimeExtract measures extraction time per symbol: the whole text is
// extracted from row 0, as in §VI-F.
func TimeExtract(b Built, n int) float64 {
	t0 := time.Now()
	b.Extract(0, n)
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}
