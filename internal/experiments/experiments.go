package experiments

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"math"

	"cinct/internal/bwzip"
	"cinct/internal/entropy"
	"cinct/internal/etgraph"
	"cinct/internal/fmindex"
	"cinct/internal/mel"
	"cinct/internal/press"
	"cinct/internal/repair"
	"cinct/internal/trajgen"
)

// ---------------------------------------------------------------------
// Table III — dataset statistics
// ---------------------------------------------------------------------

// Table3Row is one dataset's statistics line.
type Table3Row struct {
	Dataset string
	TLen    int     // |T|
	LgSigma float64 // lg σ
	H0T     float64 // H0(T) (= H0(Tbwt))
	H0Phi   float64 // H0(φ(Tbwt))
	H1T     float64 // H1(T)
	AvgDeg  float64 // d̄ of the ET-graph
}

func (r Table3Row) String() string {
	return fmt.Sprintf("%-12s |T|=%-9d lgσ=%-5.1f H0(T)=%-5.2f H0(φ)=%-5.2f H1(T)=%-5.2f d̄=%.1f",
		r.Dataset, r.TLen, r.LgSigma, r.H0T, r.H0Phi, r.H1T, r.AvgDeg)
}

// Table3 computes the statistics of Table III for one dataset.
func Table3(p *Prepared) Table3Row {
	g := etgraph.Build(p.Corpus.Text, p.Corpus.Sigma, etgraph.BigramSorted, 0)
	// Label the BWT exactly as the index does, to get H0(φ(Tbwt)).
	ix, _ := BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
	return Table3Row{
		Dataset: p.Name,
		TLen:    len(p.Corpus.Text),
		LgSigma: math.Log2(float64(p.Corpus.Sigma)),
		H0T:     entropy.H0(p.Corpus.Text),
		H0Phi:   ix.LabelEntropy(),
		H1T:     entropy.Hk(p.Corpus.Text, 1),
		AvgDeg:  g.AvgOutDegree(),
	}
}

// ---------------------------------------------------------------------
// Fig. 10 — size vs search time, all datasets × methods × block sizes
// ---------------------------------------------------------------------

// Fig10Row is one (dataset, method, block) point of Fig. 10.
type Fig10Row struct {
	Dataset  string
	Method   string
	Block    int
	BitsSym  float64
	SearchNS float64
}

func (r Fig10Row) String() string {
	return fmt.Sprintf("%-12s %-14s b=%-3d %7.2f bits/sym  %9.1f ns/query",
		r.Dataset, r.Method, r.Block, r.BitsSym, r.SearchNS)
}

// Fig10 runs the size/speed comparison for one dataset: every method,
// with the RRR-parameterized ones swept over b ∈ {15,31,63}. The
// paper's workload: `queries` suffix range queries of length
// `queryLen` sampled from the data.
func Fig10(p *Prepared, queries, queryLen int) []Fig10Row {
	qs := p.SampleQueries(queries, queryLen, 42)
	var rows []Fig10Row
	for _, block := range []int{15, 31, 63} {
		ix, cinct := BuildCiNCT(p, block, etgraph.BigramSorted, 0)
		rows = append(rows, Fig10Row{p.Name, cinct.Name, block, cinct.BitsPerSymbol, TimeSearch(cinct, qs)})
		rows = append(rows, Fig10Row{p.Name, "CiNCT w/o graph", block, CiNCTWithoutGraphBits(ix), 0})
		for _, m := range []fmindex.Method{fmindex.ICBWM, fmindex.ICBHuff} {
			b := BuildBaseline(p, m, block)
			rows = append(rows, Fig10Row{p.Name, b.Name, block, b.BitsPerSymbol, TimeSearch(b, qs)})
		}
	}
	for _, m := range []fmindex.Method{fmindex.UFMI, fmindex.FMAP, fmindex.FMInv} {
		b := BuildBaseline(p, m, 63)
		rows = append(rows, Fig10Row{p.Name, b.Name, 0, b.BitsPerSymbol, TimeSearch(b, qs)})
	}
	return rows
}

// ---------------------------------------------------------------------
// Fig. 11 — query length vs search time
// ---------------------------------------------------------------------

// Fig11Row is one (method, |P|) timing point.
type Fig11Row struct {
	Method   string
	PatLen   int
	SearchNS float64
}

func (r Fig11Row) String() string {
	return fmt.Sprintf("%-14s |P|=%-3d %9.1f ns/query", r.Method, r.PatLen, r.SearchNS)
}

// Fig11 sweeps the pattern length on one dataset (the paper uses the
// Singapore analog) for every method.
func Fig11(p *Prepared, queries int, lens []int) []Fig11Row {
	builts := BuildAll(p, 63)
	var rows []Fig11Row
	for _, l := range lens {
		qs := p.SampleQueries(queries, l, int64(1000+l))
		for _, b := range builts {
			rows = append(rows, Fig11Row{b.Name, l, TimeSearch(b, qs)})
		}
	}
	return rows
}

// ---------------------------------------------------------------------
// Figs. 12 & 13 — RandWalk scaling in σ and d̄
// ---------------------------------------------------------------------

// ScalingRow is one (σ, d̄, method) point of Fig. 12 / Fig. 13.
type ScalingRow struct {
	Sigma    int
	AvgDeg   int
	Method   string
	BitsSym  float64
	SearchNS float64
}

func (r ScalingRow) String() string {
	return fmt.Sprintf("σ=%-7d d=%-4d %-14s %7.2f bits/sym  %9.1f ns/query",
		r.Sigma, r.AvgDeg, r.Method, r.BitsSym, r.SearchNS)
}

// Fig12 sweeps the alphabet size σ with d̄ fixed at 4 and |T| = lenPerSigma·σ
// (the paper: 800σ).
func Fig12(sigmas []int, lenPerSigma, queries, queryLen int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, sigma := range sigmas {
		d := 4
		p, err := Prepare(randwalk(sigma, d, lenPerSigma*sigma))
		if err != nil {
			return nil, err
		}
		rows = append(rows, scalingPoints(p, sigma, d, queries, queryLen)...)
	}
	return rows, nil
}

// Fig13 sweeps the out-degree d̄ with σ and |T| fixed.
func Fig13(sigma int, degrees []int, totalLen, queries, queryLen int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, d := range degrees {
		p, err := Prepare(randwalk(sigma, d, totalLen))
		if err != nil {
			return nil, err
		}
		rows = append(rows, scalingPoints(p, sigma, d, queries, queryLen)...)
	}
	return rows, nil
}

func scalingPoints(p *Prepared, sigma, d, queries, queryLen int) []ScalingRow {
	qs := p.SampleQueries(queries, queryLen, 7)
	var rows []ScalingRow
	for _, b := range BuildAll(p, 63) {
		rows = append(rows, ScalingRow{sigma, d, b.Name, b.BitsPerSymbol, TimeSearch(b, qs)})
	}
	return rows
}

// ---------------------------------------------------------------------
// Fig. 14 — labeling strategy ablation
// ---------------------------------------------------------------------

// Fig14Row compares bigram-sorted vs random labeling.
type Fig14Row struct {
	Dataset  string
	Strategy string
	Block    int
	BitsSym  float64
	SearchNS float64
}

func (r Fig14Row) String() string {
	return fmt.Sprintf("%-12s %-8s b=%-3d %7.2f bits/sym  %9.1f ns/query",
		r.Dataset, r.Strategy, r.Block, r.BitsSym, r.SearchNS)
}

// Fig14 runs the Theorem 3 ablation on one dataset.
func Fig14(p *Prepared, queries, queryLen int) []Fig14Row {
	qs := p.SampleQueries(queries, queryLen, 14)
	var rows []Fig14Row
	for _, block := range []int{15, 31, 63} {
		_, opt := BuildCiNCT(p, block, etgraph.BigramSorted, 0)
		rows = append(rows, Fig14Row{p.Name, "bigram", block, opt.BitsPerSymbol, TimeSearch(opt, qs)})
		_, rnd := BuildCiNCT(p, block, etgraph.RandomShuffle, 99)
		rows = append(rows, Fig14Row{p.Name, "random", block, rnd.BitsPerSymbol, TimeSearch(rnd, qs)})
	}
	return rows
}

// ---------------------------------------------------------------------
// Fig. 15 — sub-path extraction time
// ---------------------------------------------------------------------

// Fig15Row is one (dataset, method) extraction timing.
type Fig15Row struct {
	Dataset   string
	Method    string
	ExtractNS float64 // per symbol
}

func (r Fig15Row) String() string {
	return fmt.Sprintf("%-12s %-14s %8.1f ns/symbol", r.Dataset, r.Method, r.ExtractNS)
}

// Fig15 times whole-text extraction per method (§VI-F; FM-AP is
// excluded in the paper because sdsl lacked access support — ours
// supports it, so it is included).
func Fig15(p *Prepared) []Fig15Row {
	var rows []Fig15Row
	for _, b := range BuildAll(p, 63) {
		rows = append(rows, Fig15Row{p.Name, b.Name, TimeExtract(b, len(p.Corpus.Text))})
	}
	return rows
}

// ---------------------------------------------------------------------
// Fig. 16 — construction time breakdown
// ---------------------------------------------------------------------

// Fig16Row is one method's construction breakdown, in milliseconds.
type Fig16Row struct {
	Method  string
	BWTMs   float64
	WTMs    float64
	GraphMs float64
}

func (r Fig16Row) String() string {
	return fmt.Sprintf("%-14s BWT=%8.1fms  WT=%8.1fms  ET-graph=%8.1fms",
		r.Method, r.BWTMs, r.WTMs, r.GraphMs)
}

// Fig16 measures construction stages on one dataset. The BWT stage is
// shared (identical work for every method).
func Fig16(p *Prepared) []Fig16Row {
	bwtMs := float64(p.BWTTime.Microseconds()) / 1000
	var rows []Fig16Row
	for _, b := range BuildAll(p, 63) {
		rows = append(rows, Fig16Row{
			Method: b.Name, BWTMs: bwtMs,
			WTMs:    float64(b.WTTime.Microseconds()) / 1000,
			GraphMs: float64(b.GraphTime.Microseconds()) / 1000,
		})
	}
	return rows
}

// ---------------------------------------------------------------------
// Table IV — compression ratios
// ---------------------------------------------------------------------

// Table4Row is one (dataset, compressor) ratio; larger is better.
type Table4Row struct {
	Dataset    string
	Compressor string
	Ratio      float64 // uncompressed(32-bit)/compressed; 0 = N/A
}

func (r Table4Row) String() string {
	if r.Ratio == 0 {
		return fmt.Sprintf("%-12s %-10s   N/A", r.Dataset, r.Compressor)
	}
	return fmt.Sprintf("%-12s %-10s %6.1f", r.Dataset, r.Compressor, r.Ratio)
}

// Table4 computes the compression-ratio comparison for one dataset.
// MEL and PRESS require a road network and connected paths, so they
// are N/A on datasets without one — as in the paper, where MEL is
// evaluated only on ungapped data and PRESS only where an encoder
// applies.
func Table4(p *Prepared) []Table4Row {
	var symbols int64
	for _, tr := range p.Dataset.Trajs {
		symbols += int64(len(tr))
	}
	raw := float64(symbols * 32)
	rows := []Table4Row{}

	// CiNCT: the whole index (labeled WT + ET-graph + C array).
	ix, _ := BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
	s := ix.Sizes()
	rows = append(rows, Table4Row{p.Name, "CiNCT", raw / float64(s.Total())})

	// MEL (needs the road network; skipped on gapped data as in [1]).
	if p.Dataset.Graph != nil && p.Name != "singapore" {
		l := mel.Build(p.Dataset.Graph, p.Dataset.Trajs)
		rows = append(rows, Table4Row{p.Name, "MEL", raw / float64(l.CompressedSizeBits(p.Dataset.Trajs))})
	} else {
		rows = append(rows, Table4Row{p.Name, "MEL", 0})
	}

	// Re-Pair over the concatenated corpus (with separators).
	g := repair.Compress(p.Corpus.Text, p.Corpus.Sigma)
	rows = append(rows, Table4Row{p.Name, "Re-Pair", raw / float64(g.SizeBits())})

	// bzip2 stand-in, invoked the way the paper invoked bzip2: on the
	// 32-bit binary serialization, in independent 900 kB byte blocks.
	bzBits := bwzip.CompressBytes(serialize32(p.Corpus.Text), 900*1000)
	rows = append(rows, Table4Row{p.Name, "bwzip", raw / float64(bzBits)})

	// PRESS (needs connected paths on a network).
	if p.Dataset.Graph != nil && p.Name != "singapore" {
		pr := press.Compress(p.Dataset.Graph, p.Dataset.Trajs)
		rows = append(rows, Table4Row{p.Name, "PRESS", raw / float64(pr.SizeBits())})
	} else {
		rows = append(rows, Table4Row{p.Name, "PRESS", 0})
	}

	// zip = DEFLATE over the 32-bit binary serialization.
	rows = append(rows, Table4Row{p.Name, "zip", raw / float64(flateBits(p.Corpus.Text))})
	return rows
}

// serialize32 renders the sequence as the 32-bit little-endian binary
// file the paper's compression ratios are measured against.
func serialize32(seq []uint32) []byte {
	out := make([]byte, 4*len(seq))
	for i, s := range seq {
		binary.LittleEndian.PutUint32(out[i*4:], s)
	}
	return out
}

// flateBits DEFLATE-compresses the 32-bit little-endian serialization
// and returns the size in bits.
func flateBits(seq []uint32) int64 {
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestCompression)
	if err != nil {
		panic(err)
	}
	if _, err := w.Write(serialize32(seq)); err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return int64(out.Len()) * 8
}

// ---------------------------------------------------------------------
// Table V — RML vs MEL entropy
// ---------------------------------------------------------------------

// Table5Row compares the labeling entropies (Theorem 6).
type Table5Row struct {
	Dataset string
	RML     float64
	MEL     float64
}

func (r Table5Row) String() string {
	return fmt.Sprintf("%-12s RML=%.2f  MEL=%.2f", r.Dataset, r.RML, r.MEL)
}

// Table5 computes H0 of the two labelings on one (network-backed,
// connected) dataset.
func Table5(p *Prepared) (Table5Row, error) {
	if p.Dataset.Graph == nil {
		return Table5Row{}, fmt.Errorf("experiments: %s has no road network", p.Name)
	}
	ix, _ := BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
	l := mel.Build(p.Dataset.Graph, p.Dataset.Trajs)
	return Table5Row{
		Dataset: p.Name,
		RML:     ix.LabelEntropy(),
		MEL:     l.Entropy(p.Dataset.Trajs),
	}, nil
}

// randwalk generates the Fig. 12/13 synthetic dataset with a
// deterministic seed derived from its parameters.
func randwalk(sigma, deg, totalLen int) trajgen.Dataset {
	return trajgen.RandWalk(sigma, deg, totalLen, int64(sigma*31+deg))
}
