package experiments

import (
	"strings"
	"testing"

	"cinct/internal/trajgen"
)

// tinyPrepared builds one small dataset for fast experiment tests.
func tinyPrepared(t *testing.T, gen func(trajgen.Config) trajgen.Dataset, seed int64) *Prepared {
	t.Helper()
	cfg := trajgen.Config{GridW: 12, GridH: 12, NumTrajs: 250, MeanLen: 30, Seed: seed}
	p, err := Prepare(gen(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTable3ShowsEntropyGap(t *testing.T) {
	p := tinyPrepared(t, trajgen.Singapore2, 21)
	row := Table3(p)
	if row.TLen != len(p.Corpus.Text) {
		t.Fatalf("TLen = %d", row.TLen)
	}
	// The paper's headline precondition: H0(φ) ≪ H0(T); also H1 ≤ H0.
	if row.H0Phi >= 0.5*row.H0T {
		t.Fatalf("H0(φ)=%.2f not ≪ H0(T)=%.2f", row.H0Phi, row.H0T)
	}
	if row.H1T > row.H0T+1e-9 {
		t.Fatalf("H1=%.2f exceeds H0=%.2f", row.H1T, row.H0T)
	}
	if row.AvgDeg <= 1 || row.AvgDeg > 10 {
		t.Fatalf("repaired grid corpus d̄=%.1f implausible", row.AvgDeg)
	}
	if !strings.Contains(row.String(), p.Name) {
		t.Fatal("String() should mention the dataset")
	}
}

func TestFig10CiNCTWins(t *testing.T) {
	// The paper's claims hold "when |T| gets large" (§III-C3): the
	// ET-graph and per-structure constants amortize. Use n/σ ≈ 300+,
	// still far below the paper's ~1100 but enough for the orderings.
	cfg := trajgen.Config{GridW: 10, GridH: 10, NumTrajs: 5000, MeanLen: 40, Seed: 22}
	p, err := Prepare(trajgen.Singapore2(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rows := Fig10(p, 50, 12)
	var cinctBits, icbHuffBits, icbWMBits, ufmiBits float64
	var cinctNS, icbHuffNS, icbWMNS float64
	for _, r := range rows {
		switch {
		case r.Method == "CiNCT" && r.Block == 63:
			cinctBits, cinctNS = r.BitsSym, r.SearchNS
		case r.Method == "ICB-Huff" && r.Block == 63:
			icbHuffBits, icbHuffNS = r.BitsSym, r.SearchNS
		case r.Method == "ICB-WM" && r.Block == 63:
			icbWMBits, icbWMNS = r.BitsSym, r.SearchNS
		case r.Method == "UFMI":
			ufmiBits = r.BitsSym
		}
	}
	if cinctBits == 0 || icbHuffBits == 0 || icbWMBits == 0 || ufmiBits == 0 {
		t.Fatalf("missing rows: %v", rows)
	}
	// Fig. 10's size claims: CiNCT smallest among all FM variants.
	if cinctBits >= icbHuffBits {
		t.Fatalf("CiNCT (%.2f b/s) should be smaller than ICB-Huff (%.2f b/s)",
			cinctBits, icbHuffBits)
	}
	if cinctBits >= icbWMBits {
		t.Fatalf("CiNCT (%.2f b/s) should be smaller than ICB-WM (%.2f b/s)",
			cinctBits, icbWMBits)
	}
	if cinctBits >= ufmiBits {
		t.Fatalf("CiNCT (%.2f b/s) should be smaller than UFMI (%.2f b/s)",
			cinctBits, ufmiBits)
	}
	// Speed claims vs the *compressed* competitors (paper: 7x and 25x).
	// The uncompressed UFMI comparison needs the paper's σ ≈ 2^15.5 and
	// |T| ≫ cache; Fig. 12's σ-sweep covers that trend instead.
	if cinctNS >= icbHuffNS {
		t.Fatalf("CiNCT (%.0f ns) should be faster than ICB-Huff (%.0f ns)",
			cinctNS, icbHuffNS)
	}
	if cinctNS >= icbWMNS {
		t.Fatalf("CiNCT (%.0f ns) should be faster than ICB-WM (%.0f ns)",
			cinctNS, icbWMNS)
	}
}

func TestFig11TimeGrowsWithPatternLength(t *testing.T) {
	p := tinyPrepared(t, trajgen.MOGen, 23)
	rows := Fig11(p, 40, []int{2, 8, 16})
	byMethod := map[string][]float64{}
	for _, r := range rows {
		byMethod[r.Method] = append(byMethod[r.Method], r.SearchNS)
	}
	for m, ts := range byMethod {
		if len(ts) != 3 {
			t.Fatalf("%s: %d points", m, len(ts))
		}
		// Linear growth (Algorithm 1/3 iterate |P| times): the |P|=16
		// point must exceed the |P|=2 point.
		if ts[2] <= ts[0] {
			t.Logf("warning: %s not monotone in |P| (%.0f vs %.0f) — timing noise", m, ts[0], ts[2])
		}
	}
}

func TestFig12And13Shapes(t *testing.T) {
	rows12, err := Fig12([]int{256, 1024}, 50, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	// CiNCT size must stay ~flat while UFMI grows with σ.
	get := func(rows []ScalingRow, method string, sigma int) float64 {
		for _, r := range rows {
			if r.Method == method && r.Sigma == sigma {
				return r.BitsSym
			}
		}
		t.Fatalf("row %s σ=%d missing", method, sigma)
		return 0
	}
	cinctGrowth := get(rows12, "CiNCT", 1024) / get(rows12, "CiNCT", 256)
	ufmiGrowth := get(rows12, "UFMI", 1024) / get(rows12, "UFMI", 256)
	if cinctGrowth >= ufmiGrowth {
		t.Fatalf("CiNCT growth %.2fx should be below UFMI growth %.2fx (σ-independence)",
			cinctGrowth, ufmiGrowth)
	}

	rows13, err := Fig13(512, []int{4, 32}, 40000, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	// CiNCT size must grow with d̄ (Fig. 13's message: sparsity is the
	// enabling assumption).
	var c4, c32 float64
	for _, r := range rows13 {
		if r.Method == "CiNCT" {
			if r.AvgDeg == 4 {
				c4 = r.BitsSym
			} else if r.AvgDeg == 32 {
				c32 = r.BitsSym
			}
		}
	}
	if c32 <= c4 {
		t.Fatalf("CiNCT should degrade with d̄: %.2f at d=4 vs %.2f at d=32", c4, c32)
	}
}

func TestFig14BigramBeatsRandom(t *testing.T) {
	p := tinyPrepared(t, trajgen.Singapore2, 24)
	rows := Fig14(p, 50, 12)
	var bg, rnd float64
	for _, r := range rows {
		if r.Block == 63 {
			if r.Strategy == "bigram" {
				bg = r.BitsSym
			} else {
				rnd = r.BitsSym
			}
		}
	}
	if bg >= rnd {
		t.Fatalf("bigram labeling (%.2f b/s) should beat random (%.2f b/s) — Theorem 3",
			bg, rnd)
	}
}

func TestFig15AllMethodsExtract(t *testing.T) {
	p := tinyPrepared(t, trajgen.MOGen, 25)
	rows := Fig15(p)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (CiNCT + 5 baselines)", len(rows))
	}
	for _, r := range rows {
		if r.ExtractNS <= 0 {
			t.Fatalf("%s: non-positive extraction time", r.Method)
		}
	}
}

func TestFig16Breakdown(t *testing.T) {
	p := tinyPrepared(t, trajgen.Singapore2, 26)
	rows := Fig16(p)
	for _, r := range rows {
		if r.BWTMs <= 0 || r.WTMs < 0 {
			t.Fatalf("%s: bad breakdown %+v", r.Method, r)
		}
		if r.Method == "CiNCT" && r.GraphMs <= 0 {
			t.Fatal("CiNCT must report ET-graph build time")
		}
		if r.Method == "UFMI" && r.GraphMs != 0 {
			t.Fatal("baselines have no ET-graph stage")
		}
	}
}

func TestTable4CiNCTBestOnNCTData(t *testing.T) {
	// As with Fig. 10, the ratios need |T| large enough to amortize
	// CiNCT's fixed structures (paper n/σ ≈ 1100; we use ≈ 600).
	cfg := trajgen.Config{GridW: 10, GridH: 10, NumTrajs: 5000, MeanLen: 40, Seed: 27}
	p, err := Prepare(trajgen.Singapore2(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rows := Table4(p)
	ratios := map[string]float64{}
	for _, r := range rows {
		ratios[r.Compressor] = r.Ratio
	}
	if ratios["CiNCT"] <= 1 {
		t.Fatalf("CiNCT ratio %.1f must beat raw", ratios["CiNCT"])
	}
	for _, c := range []string{"MEL", "Re-Pair", "bwzip", "zip", "PRESS"} {
		if _, ok := ratios[c]; !ok {
			t.Fatalf("missing compressor %s", c)
		}
	}
	// Table IV's scale-robust orderings: CiNCT beats the general-
	// purpose compressors (zip, bzip2-style, Re-Pair). MEL and PRESS
	// are closer on our synthetic corpora than on real taxi data —
	// the generators emit more shortest-path-regular trajectories than
	// real traffic (see EXPERIMENTS.md) — so their rows are reported,
	// not asserted.
	if ratios["CiNCT"] <= ratios["zip"] {
		t.Fatalf("CiNCT (%.1f) should beat zip (%.1f)", ratios["CiNCT"], ratios["zip"])
	}
	if ratios["CiNCT"] <= ratios["Re-Pair"] {
		t.Fatalf("CiNCT (%.1f) should beat Re-Pair (%.1f)", ratios["CiNCT"], ratios["Re-Pair"])
	}
	// bwzip (bzip2 stand-in) is reported but not asserted: at quick
	// scale σ ≈ 340, so 3 of 4 bytes of every 32-bit ID are zero and
	// byte-level BWT compressors overperform relative to the paper's
	// σ = 2^15.5 regime (see EXPERIMENTS.md).
	if ratios["bwzip"] <= 1 {
		t.Fatalf("bwzip ratio %.1f must at least beat raw", ratios["bwzip"])
	}
}

func TestTable5RMLBeatsMEL(t *testing.T) {
	for _, gen := range []func(trajgen.Config) trajgen.Dataset{trajgen.Singapore2, trajgen.Roma} {
		p := tinyPrepared(t, gen, 28)
		row, err := Table5(p)
		if err != nil {
			t.Fatal(err)
		}
		if row.RML >= row.MEL {
			t.Fatalf("%s: RML=%.3f should be below MEL=%.3f (Theorem 6)",
				p.Name, row.RML, row.MEL)
		}
	}
}

func TestTable5RequiresNetwork(t *testing.T) {
	cfg := trajgen.Config{GridW: 4, GridH: 4, NumTrajs: 200, MeanLen: 10, Seed: 30}
	p, err := Prepare(trajgen.Chess(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Table5(p); err == nil {
		t.Fatal("Table5 should reject datasets without a network")
	}
}

func TestSampleQueriesShapes(t *testing.T) {
	p := tinyPrepared(t, trajgen.MOGen, 31)
	qs := p.SampleQueries(20, 10, 1)
	if len(qs) != 20 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if len(q) != 10 {
			t.Fatalf("query length %d", len(q))
		}
	}
	// Degenerate: chess openings are 10 long; asking for 20 must fall
	// back instead of looping forever.
	cfg := trajgen.Config{GridW: 4, GridH: 4, NumTrajs: 100, MeanLen: 10, Seed: 32}
	pc, err := Prepare(trajgen.Chess(cfg))
	if err != nil {
		t.Fatal(err)
	}
	qs = pc.SampleQueries(5, 20, 1)
	if len(qs) != 5 || len(qs[0]) != 10 {
		t.Fatalf("fallback sampling broken: %d queries of %d", len(qs), len(qs[0]))
	}
}

func TestPaperDatasetsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	ps, err := PaperDatasets(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 5 {
		t.Fatalf("%d datasets", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if len(p.Corpus.Text) < 10000 {
			t.Fatalf("%s: only %d symbols", p.Name, len(p.Corpus.Text))
		}
	}
	for _, want := range []string{"singapore", "singapore2", "roma", "mogen", "chess"} {
		if !names[want] {
			t.Fatalf("dataset %s missing", want)
		}
	}
}
