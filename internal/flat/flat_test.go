package flat

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	if !CanView() {
		t.Skip("flat views require a little-endian host")
	}
	var w Writer
	w.U64(42)
	w.I64(-7)
	w.F64(3.5)
	w.U64s([]uint64{1, 2, 3})
	w.I64s([]int64{-1, 0, 9})
	w.U32s([]uint32{10, 20, 30})       // odd length exercises padding
	w.I32s([]int32{-5, 5, -6, 6, -7})  // odd again
	w.U8s([]byte("hello, flat world")) // 17 bytes: partial tail word
	w.U8s(nil)
	w.U32s(nil)

	c := NewCursor(w.Words())
	if got := c.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := c.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := c.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	u64s := c.U64s()
	if len(u64s) != 3 || u64s[0] != 1 || u64s[2] != 3 {
		t.Errorf("U64s = %v", u64s)
	}
	i64s := c.I64s()
	if len(i64s) != 3 || i64s[0] != -1 || i64s[2] != 9 {
		t.Errorf("I64s = %v", i64s)
	}
	u32s := c.U32s()
	if len(u32s) != 3 || u32s[0] != 10 || u32s[1] != 20 || u32s[2] != 30 {
		t.Errorf("U32s = %v", u32s)
	}
	i32s := c.I32s()
	if len(i32s) != 5 || i32s[0] != -5 || i32s[4] != -7 {
		t.Errorf("I32s = %v", i32s)
	}
	if got := string(c.U8s()); got != "hello, flat world" {
		t.Errorf("U8s = %q", got)
	}
	if got := c.U8s(); len(got) != 0 {
		t.Errorf("empty U8s = %v", got)
	}
	if got := c.U32s(); len(got) != 0 {
		t.Errorf("empty U32s = %v", got)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if c.Remaining() != 0 {
		t.Errorf("Remaining = %d", c.Remaining())
	}
}

func TestCursorOverrun(t *testing.T) {
	c := NewCursor([]uint64{5}) // declares a 5-word slice with 0 words behind it
	if s := c.U64s(); s != nil {
		t.Errorf("overlong U64s = %v", s)
	}
	if !errors.Is(c.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", c.Err())
	}
	// Latched: every later read stays zero.
	if v := c.U64(); v != 0 {
		t.Errorf("post-error U64 = %d", v)
	}
}

func TestCursorHugeLength(t *testing.T) {
	// A length prefix near 2^64 must fail cleanly, not overflow into a
	// small positive word count.
	c := NewCursor([]uint64{^uint64(0) - 3, 0, 0})
	if s := c.U32s(); s != nil {
		t.Errorf("huge U32s = %v", s)
	}
	if !errors.Is(c.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", c.Err())
	}
}

func TestCursorEmpty(t *testing.T) {
	c := NewCursor(nil)
	if v := c.U64(); v != 0 {
		t.Errorf("U64 on empty = %d", v)
	}
	if !errors.Is(c.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v", c.Err())
	}
}
