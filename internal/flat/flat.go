// Package flat implements the word-level encoding shared by every
// section of the v3 container format: all data is a stream of
// little-endian 64-bit words, so the reading side can wrap an mmap'd
// (or heap-loaded) window as typed slices with no decode step. The
// Writer packs values into words portably on any host; the Cursor
// hands back zero-copy sub-slice views, which is why reading requires
// a little-endian host (see CanView) — the only platforms the serving
// path targets.
//
// Every variable-length field is length-prefixed and every read is
// bounds-checked against the window, so a corrupt length fails with
// ErrCorrupt instead of allocating, panicking, or walking past the
// mapping. Views never allocate: a lying length has nothing to
// amplify.
package flat

import (
	"errors"
	"math"
	"unsafe"
)

// ErrCorrupt reports a window whose lengths or values do not describe
// a well-formed stream.
var ErrCorrupt = errors.New("flat: corrupt section")

// hostLittle reports whether the host stores integers little-endian —
// the precondition for reinterpreting mapped words as narrower types.
var hostLittle = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// CanView reports whether this host can take zero-copy views over
// little-endian word streams. False only on big-endian hosts, where
// v3 containers cannot be opened.
func CanView() bool { return hostLittle }

// Writer accumulates a word stream. The zero value is ready to use.
type Writer struct {
	words []uint64
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Len returns the number of words written so far.
func (w *Writer) Len() int { return len(w.words) }

// Words returns the accumulated stream. The slice is owned by the
// Writer until the caller stops appending.
func (w *Writer) Words() []uint64 { return w.words }

// U64 appends one word.
func (w *Writer) U64(v uint64) { w.words = append(w.words, v) }

// I64 appends one signed word.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends one float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// U64s appends a length-prefixed word slice.
func (w *Writer) U64s(s []uint64) {
	w.U64(uint64(len(s)))
	w.words = append(w.words, s...)
}

// I64s appends a length-prefixed signed word slice.
func (w *Writer) I64s(s []int64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.words = append(w.words, uint64(v))
	}
}

// U32s appends a length-prefixed uint32 slice, two values per word,
// low half first — the layout a little-endian []uint32 view reads
// back directly.
func (w *Writer) U32s(s []uint32) {
	w.U64(uint64(len(s)))
	for i := 0; i < len(s); i += 2 {
		v := uint64(s[i])
		if i+1 < len(s) {
			v |= uint64(s[i+1]) << 32
		}
		w.U64(v)
	}
}

// I32s appends a length-prefixed int32 slice (same packing as U32s).
func (w *Writer) I32s(s []int32) {
	w.U64(uint64(len(s)))
	for i := 0; i < len(s); i += 2 {
		v := uint64(uint32(s[i]))
		if i+1 < len(s) {
			v |= uint64(uint32(s[i+1])) << 32
		}
		w.U64(v)
	}
}

// U8s appends a length-prefixed byte slice, eight bytes per word,
// lowest-addressed byte in the low bits.
func (w *Writer) U8s(s []byte) {
	w.U64(uint64(len(s)))
	for i := 0; i < len(s); i += 8 {
		var v uint64
		end := i + 8
		if end > len(s) {
			end = len(s)
		}
		for j := end - 1; j >= i; j-- {
			v = v<<8 | uint64(s[j])
		}
		w.U64(v)
	}
}

// Cursor reads a word stream produced by Writer, latching the first
// error: once a read fails every later read returns a zero value and
// Err reports ErrCorrupt.
type Cursor struct {
	words []uint64
	pos   int
	bad   bool
}

// NewCursor wraps a word window.
func NewCursor(words []uint64) *Cursor { return &Cursor{words: words} }

// Err returns ErrCorrupt if any read overran the window or decoded an
// implausible length, nil otherwise.
func (c *Cursor) Err() error {
	if c.bad {
		return ErrCorrupt
	}
	return nil
}

// Remaining returns the number of unread words.
func (c *Cursor) Remaining() int { return len(c.words) - c.pos }

func (c *Cursor) fail() { c.bad = true }

// U64 reads one word.
func (c *Cursor) U64() uint64 {
	if c.bad || c.pos >= len(c.words) {
		c.fail()
		return 0
	}
	v := c.words[c.pos]
	c.pos++
	return v
}

// I64 reads one signed word.
func (c *Cursor) I64() int64 { return int64(c.U64()) }

// F64 reads one float64.
func (c *Cursor) F64() float64 { return math.Float64frombits(c.U64()) }

// Int reads one word as a non-negative int, failing on values that do
// not fit.
func (c *Cursor) Int() int {
	v := c.U64()
	if v > math.MaxInt64 || int64(v) < 0 || uint64(int(v)) != v {
		c.fail()
		return 0
	}
	return int(v)
}

// length reads a length prefix for a field occupying words(n) words,
// validating it against the remaining window before any use.
func (c *Cursor) length(wordsPer func(n int) int) (int, bool) {
	n := c.Int()
	if c.bad {
		return 0, false
	}
	need := wordsPer(n)
	if need < 0 || need > c.Remaining() {
		c.fail()
		return 0, false
	}
	return n, true
}

// U64s reads a length-prefixed word slice as a zero-copy view.
func (c *Cursor) U64s() []uint64 {
	n, ok := c.length(func(n int) int { return n })
	if !ok {
		return nil
	}
	s := c.words[c.pos : c.pos+n]
	c.pos += n
	return s
}

// I64s reads a length-prefixed signed word slice as a zero-copy view.
func (c *Cursor) I64s() []int64 {
	w := c.U64s()
	if w == nil {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(w))), len(w))
}

// U32s reads a length-prefixed uint32 slice as a zero-copy view
// (little-endian host only).
func (c *Cursor) U32s() []uint32 {
	n, ok := c.length(func(n int) int { return (n + 1) / 2 })
	if !ok {
		return nil
	}
	nw := (n + 1) / 2
	w := c.words[c.pos : c.pos+nw]
	c.pos += nw
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(w))), 2*nw)[:n:n]
}

// I32s reads a length-prefixed int32 slice as a zero-copy view
// (little-endian host only).
func (c *Cursor) I32s() []int32 {
	u := c.U32s()
	if u == nil {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(u))), len(u))
}

// U8s reads a length-prefixed byte slice as a zero-copy view
// (little-endian host only).
func (c *Cursor) U8s() []byte {
	n, ok := c.length(func(n int) int { return (n + 7) / 8 })
	if !ok {
		return nil
	}
	nw := (n + 7) / 8
	w := c.words[c.pos : c.pos+nw]
	c.pos += nw
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(w))), 8*nw)[:n:n]
}
