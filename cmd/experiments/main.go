// Command experiments regenerates every table and figure of the
// paper's evaluation (§VI) on the dataset analogs. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results.
//
//	experiments                  # run everything at quick scale
//	experiments -exp fig10       # one experiment
//	experiments -scale full      # paper-sized corpora (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cinct/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table3|fig10|fig11|fig12|fig13|fig14|fig15|fig16|table4|table5|all")
		scale = flag.String("scale", "quick", "quick or full")
	)
	flag.Parse()

	valid := map[string]bool{
		"all": true, "table3": true, "fig10": true, "fig11": true, "fig12": true,
		"fig13": true, "fig14": true, "fig15": true, "fig16": true,
		"table4": true, "table5": true,
	}
	if !valid[*exp] {
		fmt.Fprintf(os.Stderr, "experiments: unknown -exp %q\n", *exp)
		os.Exit(2)
	}
	if *scale != "quick" && *scale != "full" {
		fmt.Fprintf(os.Stderr, "experiments: unknown -scale %q\n", *scale)
		os.Exit(2)
	}

	s := experiments.Quick
	queries := 200
	if *scale == "full" {
		s = experiments.Full
		queries = 500 // the paper's workload size
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	t0 := time.Now()

	var prepared []*experiments.Prepared
	needDatasets := false
	for _, e := range []string{"table3", "fig10", "fig11", "fig14", "fig15", "fig16", "table4", "table5"} {
		if want(e) {
			needDatasets = true
		}
	}
	if needDatasets {
		fmt.Fprintf(os.Stderr, "generating dataset analogs (%s scale)...\n", *scale)
		var err error
		prepared, err = experiments.PaperDatasets(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	byName := map[string]*experiments.Prepared{}
	for _, p := range prepared {
		byName[p.Name] = p
	}

	if want("table3") {
		header("Table III — dataset statistics")
		for _, p := range prepared {
			fmt.Println(experiments.Table3(p))
		}
	}
	if want("fig10") {
		header("Fig. 10 — index size vs suffix-range query time (|P|=20, all datasets)")
		for _, p := range prepared {
			for _, r := range experiments.Fig10(p, queries, 20) {
				fmt.Println(r)
			}
		}
	}
	if want("fig11") {
		header("Fig. 11 — query length vs search time (Singapore analog)")
		for _, r := range experiments.Fig11(byName["singapore"], queries,
			[]int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
			fmt.Println(r)
		}
	}
	if want("fig12") {
		header("Fig. 12 — σ scaling (RandWalk, d̄=4)")
		sigmas := []int{1 << 10, 1 << 11, 1 << 12}
		lenPer := 100
		if s == experiments.Full {
			// The paper sweeps σ = 2^14…2^18 at |T| = 800σ (up to 200M
			// symbols on their 32 GB testbed); 2^13…2^16 at 200σ keeps
			// the same four-doubling sweep laptop-sized.
			sigmas = []int{1 << 13, 1 << 14, 1 << 15, 1 << 16}
			lenPer = 200
		}
		rows, err := experiments.Fig12(sigmas, lenPer, queries, 20)
		fail(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	}
	if want("fig13") {
		header("Fig. 13 — out-degree scaling (RandWalk, σ fixed)")
		sigma, total := 1<<12, 400000
		degrees := []int{4, 8, 16, 32, 64}
		if s == experiments.Full {
			// Paper: σ = 2^16, |T| = 100M; 2^14/10M preserves the d̄
			// sweep at laptop size.
			sigma, total = 1<<14, 10_000_000
			degrees = []int{4, 8, 16, 32, 64, 128}
		}
		rows, err := experiments.Fig13(sigma, degrees, total, queries, 20)
		fail(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	}
	if want("fig14") {
		header("Fig. 14 — labeling strategies (bigram-sorted vs random)")
		for _, p := range prepared {
			for _, r := range experiments.Fig14(p, queries, 20) {
				fmt.Println(r)
			}
		}
	}
	if want("fig15") {
		header("Fig. 15 — sub-path extraction time (whole text)")
		for _, name := range []string{"singapore", "roma", "mogen", "chess"} {
			for _, r := range experiments.Fig15(byName[name]) {
				fmt.Println(r)
			}
		}
	}
	if want("fig16") {
		header("Fig. 16 — index construction breakdown (Singapore analog)")
		for _, r := range experiments.Fig16(byName["singapore"]) {
			fmt.Println(r)
		}
	}
	if want("table4") {
		header("Table IV — compression ratios (larger is better)")
		for _, p := range prepared {
			for _, r := range experiments.Table4(p) {
				fmt.Println(r)
			}
		}
	}
	if want("table5") {
		header("Table V — labeling entropy, RML vs MEL")
		for _, name := range []string{"singapore2", "roma"} {
			row, err := experiments.Table5(byName[name])
			fail(err)
			fmt.Println(row)
		}
	}
	fmt.Fprintf(os.Stderr, "\ndone in %v\n", time.Since(t0).Round(time.Millisecond))
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
