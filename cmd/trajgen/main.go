// Command trajgen generates the dataset analogs used by the
// experiments (see DESIGN.md §3 for what each substitutes) and writes
// them as text corpora: one trajectory per line, space-separated road
// edge IDs.
//
// Usage:
//
//	trajgen -dataset singapore2 -trajs 5000 -meanlen 45 -out corpus.txt
//	trajgen -dataset randwalk -sigma 65536 -deg 4 -total 1000000 -out rw.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cinct/internal/trajgen"
	"cinct/internal/trajio"
)

func main() {
	var (
		dataset = flag.String("dataset", "singapore2",
			"one of: singapore, singapore2, roma, mogen, chess, randwalk")
		out      = flag.String("out", "", "output file (default stdout)")
		timesOut = flag.String("times", "", "also write synthetic timestamp columns to this file")
		trajs    = flag.Int("trajs", 2000, "number of trajectories")
		meanLen  = flag.Int("meanlen", 45, "mean trajectory length")
		gridW    = flag.Int("gridw", 26, "road grid width")
		gridH    = flag.Int("gridh", 26, "road grid height")
		seed     = flag.Int64("seed", 1, "generator seed")
		sigma    = flag.Int("sigma", 1<<14, "randwalk: alphabet size")
		deg      = flag.Int("deg", 4, "randwalk: average out-degree")
		total    = flag.Int("total", 1<<20, "randwalk: total symbols")
	)
	flag.Parse()

	cfg := trajgen.Config{
		GridW: *gridW, GridH: *gridH,
		NumTrajs: *trajs, MeanLen: *meanLen, Seed: *seed,
	}
	var d trajgen.Dataset
	switch *dataset {
	case "singapore":
		d = trajgen.Singapore(cfg)
	case "singapore2":
		d = trajgen.Singapore2(cfg)
	case "roma":
		d = trajgen.Roma(cfg)
	case "mogen":
		d = trajgen.MOGen(cfg)
	case "chess":
		d = trajgen.Chess(cfg)
	case "randwalk":
		d = trajgen.RandWalk(*sigma, *deg, *total, *seed)
	default:
		fmt.Fprintf(os.Stderr, "trajgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trajgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trajio.Write(w, d.Trajs); err != nil {
		fmt.Fprintf(os.Stderr, "trajgen: %v\n", err)
		os.Exit(1)
	}
	if *timesOut != "" {
		tf, err := os.Create(*timesOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trajgen: %v\n", err)
			os.Exit(1)
		}
		defer tf.Close()
		if err := trajio.WriteTimes(tf, synthTimes(d.Trajs, *seed)); err != nil {
			fmt.Fprintf(os.Stderr, "trajgen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "trajgen: %s: %d trajectories, %d symbols\n",
		d.Name, len(d.Trajs), d.TotalSymbols())
}

// synthTimes fabricates a timestamp column per trajectory (entry time
// of each edge, seconds): departures spread over a day, per-edge
// travel times of 5–64s. It exists so one trajgen run can feed both
// cinct build and cinct build-temporal.
func synthTimes(trajs [][]uint32, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed ^ 0x7467656e)) // independent of the corpus stream
	times := make([][]int64, len(trajs))
	for k, tr := range trajs {
		col := make([]int64, len(tr))
		at := rng.Int63n(86_400)
		for i := range col {
			col[i] = at
			at += 5 + rng.Int63n(60)
		}
		times[k] = col
	}
	return times
}
