// Command cinct builds, inspects and queries CiNCT indexes from the
// command line.
//
//	cinct build  -in corpus.txt -index corpus.cinct [-block 63] [-sample 64] [-shards N]
//	cinct stats  -index corpus.cinct
//	cinct count  -index corpus.cinct -path "17 42 99"
//	cinct find   -index corpus.cinct -path "17 42 99" [-limit 10]
//	cinct show   -index corpus.cinct -traj 5
//
// Corpus files hold one trajectory per line as space-separated road
// edge IDs (the format cmd/trajgen emits).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cinct"
	"cinct/internal/trajio"
)

// newDeterministicRand gives verify reproducible sampling.
func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "stats":
		err = cmdStats(args)
	case "count":
		err = cmdCount(args)
	case "find":
		err = cmdFind(args)
	case "show":
		err = cmdShow(args)
	case "verify":
		err = cmdVerify(args)
	case "build-temporal":
		err = cmdBuildTemporal(args)
	case "find-interval":
		err = cmdFindInterval(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cinct %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: cinct {build|stats|count|find|show|verify|build-temporal|find-interval} [flags]")
	os.Exit(2)
}

// cmdBuildTemporal indexes a corpus together with a timestamps file
// (same line-per-trajectory layout; times[k][i] = entry time of edge i).
func cmdBuildTemporal(args []string) error {
	fs := flag.NewFlagSet("build-temporal", flag.ExitOnError)
	in := fs.String("in", "", "input corpus file")
	timesPath := fs.String("times", "", "timestamps file (aligned with -in)")
	out := fs.String("index", "", "output index file")
	block := fs.Int("block", 63, "RRR block size (15, 31 or 63)")
	sample := fs.Int("sample", 64, "SA sample rate (must be > 0)")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"corpus partitions built and queried in parallel (1 = monolithic)")
	fs.Parse(args)
	if *in == "" || *timesPath == "" || *out == "" {
		return fmt.Errorf("-in, -times and -index are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	trajs, err := trajio.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	tf, err := os.Open(*timesPath)
	if err != nil {
		return err
	}
	times, err := trajio.ReadTimes(tf)
	tf.Close()
	if err != nil {
		return err
	}
	opts := cinct.DefaultOptions()
	opts.Block = *block
	opts.SampleRate = *sample
	opts.Shards = *shards
	ix, err := cinct.BuildTemporal(trajs, times, opts)
	if err != nil {
		return err
	}
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	n, err := ix.Save(of)
	if err != nil {
		return err
	}
	fmt.Printf("temporal index: %d trajectories, %d bytes on disk (timestamps %.2f bits/entry)\n",
		ix.NumTrajectories(), n, float64(ix.TimestampBits())/float64(ix.Len()))
	return nil
}

// cmdFindInterval runs a strict path query.
func cmdFindInterval(args []string) error {
	fs := flag.NewFlagSet("find-interval", flag.ExitOnError)
	index := fs.String("index", "", "temporal index file")
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	from := fs.Int64("from", 0, "interval start (inclusive)")
	to := fs.Int64("to", 1<<62, "interval end (inclusive)")
	limit := fs.Int("limit", 20, "max matches (0 = all)")
	fs.Parse(args)
	if *index == "" {
		return fmt.Errorf("-index is required")
	}
	f, err := os.Open(*index)
	if err != nil {
		return err
	}
	defer f.Close()
	ix, err := cinct.LoadTemporal(f)
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	hits, err := ix.FindInInterval(p, *from, *to, *limit)
	if err != nil {
		return err
	}
	for _, h := range hits {
		fmt.Printf("trajectory %d @ offset %d, entered t=%d\n",
			h.Trajectory, h.Offset, h.EnteredAt)
	}
	fmt.Printf("%d match(es)\n", len(hits))
	return nil
}

// cmdVerify cross-checks the index against the original corpus: counts
// of sampled sub-paths versus a naive scan, and full reconstruction of
// sampled trajectories.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "original corpus file")
	index := fs.String("index", "", "index file")
	samples := fs.Int("samples", 200, "number of sampled checks")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	trajs, err := trajio.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	ix, err := loadIndex(*index)
	if err != nil {
		return err
	}
	if ix.NumTrajectories() != len(trajs) {
		return fmt.Errorf("index holds %d trajectories, corpus has %d",
			ix.NumTrajectories(), len(trajs))
	}
	naive := func(path []uint32) int {
		count := 0
		for _, tr := range trajs {
		scan:
			for i := 0; i+len(path) <= len(tr); i++ {
				for j := range path {
					if tr[i+j] != path[j] {
						continue scan
					}
				}
				count++
			}
		}
		return count
	}
	rng := newDeterministicRand()
	checked := 0
	for checked < *samples {
		tr := trajs[rng.Intn(len(trajs))]
		if len(tr) < 2 {
			continue
		}
		m := 2 + rng.Intn(4)
		if m > len(tr) {
			m = len(tr)
		}
		start := rng.Intn(len(tr) - m + 1)
		path := tr[start : start+m]
		if got, want := ix.Count(path), naive(path); got != want {
			return fmt.Errorf("MISMATCH: Count(%v) = %d, naive scan = %d", path, got, want)
		}
		checked++
	}
	// Reconstruction spot checks.
	for k := 0; k < *samples/10+1; k++ {
		id := rng.Intn(len(trajs))
		got, err := ix.Trajectory(id)
		if err != nil {
			return err
		}
		if len(got) != len(trajs[id]) {
			return fmt.Errorf("MISMATCH: trajectory %d length %d, corpus %d",
				id, len(got), len(trajs[id]))
		}
		for i := range got {
			if got[i] != trajs[id][i] {
				return fmt.Errorf("MISMATCH: trajectory %d differs at %d", id, i)
			}
		}
	}
	fmt.Printf("verified: %d count checks and %d reconstructions OK\n",
		checked, *samples/10+1)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input corpus file")
	out := fs.String("index", "", "output index file")
	block := fs.Int("block", 63, "RRR block size (15, 31 or 63)")
	sample := fs.Int("sample", 64, "SA sample rate (0 = count-only index)")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"corpus partitions built and queried in parallel (1 = monolithic)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -index are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	trajs, err := trajio.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	opts := cinct.DefaultOptions()
	opts.Block = *block
	opts.SampleRate = *sample
	opts.Shards = *shards
	t0 := time.Now()
	ix, err := cinct.Build(trajs, opts)
	if err != nil {
		return err
	}
	buildTime := time.Since(t0)
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	n, err := ix.Save(of)
	if err != nil {
		return err
	}
	s := ix.Stats()
	fmt.Printf("indexed %d trajectories (%d symbols, %d shard(s)) in %v\n",
		s.Trajectories, s.TextLen, s.Shards, buildTime.Round(time.Millisecond))
	fmt.Printf("index: %d bytes on disk, %.2f bits/symbol in memory\n", n, s.BitsPerSymbol)
	return nil
}

func loadIndex(path string) (*cinct.Index, error) {
	if path == "" {
		return nil, fmt.Errorf("-index is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cinct.Load(f)
}

func parsePath(s string) ([]uint32, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty -path")
	}
	out := make([]uint32, len(fields))
	for i, fld := range fields {
		v, err := strconv.ParseUint(fld, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad edge ID %q: %v", fld, err)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	index := fs.String("index", "", "index file")
	fs.Parse(args)
	ix, err := loadIndex(*index)
	if err != nil {
		return err
	}
	s := ix.Stats()
	fmt.Printf("shards:           %d\n", s.Shards)
	fmt.Printf("trajectories:     %d\n", s.Trajectories)
	fmt.Printf("distinct edges:   %d\n", s.Edges)
	fmt.Printf("|T|:              %d\n", s.TextLen)
	fmt.Printf("ET-graph edges:   %d (d̄ = %.2f, max out-degree %d)\n",
		s.ETGraphEdges, s.AvgOutDegree, s.MaxLabel)
	fmt.Printf("H0(φ(Tbwt)):      %.2f bits/symbol\n", s.LabelEntropy)
	fmt.Printf("wavelet tree:     %.2f bits/symbol\n", float64(s.WaveletBits)/float64(s.TextLen))
	fmt.Printf("ET-graph:         %.2f bits/symbol\n", float64(s.GraphBits)/float64(s.TextLen))
	fmt.Printf("C array:          %.2f bits/symbol\n", float64(s.CArrayBits)/float64(s.TextLen))
	fmt.Printf("locate samples:   %.2f bits/symbol\n", float64(s.LocateBits)/float64(s.TextLen))
	fmt.Printf("total (index):    %.2f bits/symbol\n", s.BitsPerSymbol)
	return nil
}

func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	index := fs.String("index", "", "index file")
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	fs.Parse(args)
	ix, err := loadIndex(*index)
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	t0 := time.Now()
	n := ix.Count(p)
	fmt.Printf("%d occurrences (%v)\n", n, time.Since(t0))
	return nil
}

func cmdFind(args []string) error {
	fs := flag.NewFlagSet("find", flag.ExitOnError)
	index := fs.String("index", "", "index file")
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	limit := fs.Int("limit", 20, "max matches to report (0 = all)")
	fs.Parse(args)
	ix, err := loadIndex(*index)
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	hits, err := ix.Find(p, *limit)
	if err != nil {
		return err
	}
	for _, h := range hits {
		fmt.Printf("trajectory %d @ offset %d\n", h.Trajectory, h.Offset)
	}
	fmt.Printf("%d match(es)\n", len(hits))
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	index := fs.String("index", "", "index file")
	traj := fs.Int("traj", 0, "trajectory ID")
	fs.Parse(args)
	ix, err := loadIndex(*index)
	if err != nil {
		return err
	}
	if *traj < 0 || *traj >= ix.NumTrajectories() {
		return fmt.Errorf("trajectory %d out of range [0,%d)", *traj, ix.NumTrajectories())
	}
	tr, err := ix.Trajectory(*traj)
	if err != nil {
		return err
	}
	for i, e := range tr {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(e)
	}
	fmt.Println()
	return nil
}
