// Command cinct builds, inspects and queries CiNCT indexes from the
// command line. Every retrieval subcommand is a cinct.Query executed
// through the unified Search path — locally through internal/engine,
// or remotely through the daemon's streaming /v1/{index}/query
// endpoint — and can target either a local index file or a running
// daemon:
//
//	cinct build  -in corpus.txt -index corpus.cinct [-block 63] [-sample 64] [-shards N]
//	cinct build-temporal -in corpus.txt -times times.txt -index corpus.tcinct
//	cinct stats  -index corpus.cinct
//	cinct count  -index corpus.cinct -path "17 42 99"
//	cinct find   -index corpus.cinct -path "17 42 99" [-limit 10] [-cursor TOKEN]
//	cinct find-traj -index corpus.cinct -path "17 42 99" [-limit 10]
//	cinct show   -index corpus.cinct -traj 5
//	cinct subpath -index corpus.cinct -traj 5 -from 2 -to 9
//	cinct verify -in corpus.txt -index corpus.cinct
//	cinct find-interval -index corpus.tcinct -path "17 42" -from 0 -to 999
//	cinct count-interval -index corpus.tcinct -path "17 42" -from 0 -to 999
//	cinct ingest -remote http://localhost:8132 -name corpus -in more.txt [-times more-times.txt] [-seal]
//	cinct ingest -index corpus.cinct -in more.txt   (appends, seals, persists in place)
//	cinct compact -index corpus.cinct [-full=false]   (merge sealed shards, persist in place)
//	cinct compact -remote http://localhost:8132 -name corpus [-full]
//	cinct convert -in corpus.cinct -out corpus3.cinct [-temporal]
//	cinct roadnet-gen -out net.road [-w 8] [-h 8] [-seed 1]
//	cinct gps-simulate -roadnet net.road -out traces.ndjson [-truth paths.txt] [-n 10] [-noise 0.05]
//	cinct gps-ingest -remote http://localhost:8132 -name corpus -in traces.ndjson [-v]
//	cinct subscribe -remote http://localhost:8132 -name corpus -path "17 42" [-from 0 -to 999] [-poll]
//
// Any query subcommand accepts -remote URL -name INDEX instead of
// -index FILE to run against a cinctd daemon:
//
//	cinct count -remote http://localhost:8132 -name corpus -path "17 42 99"
//
// Corpus files hold one trajectory per line as space-separated road
// edge IDs (the format cmd/trajgen emits). Temporal index files
// conventionally use the .tcinct extension, which cinctd and the
// engine recognize; find-interval loads its -index as temporal
// regardless of extension.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/querygen"
	"cinct/internal/trajio"
	"cinct/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "build-temporal":
		err = cmdBuildTemporal(args)
	case "stats":
		err = cmdStats(args)
	case "count":
		err = cmdCount(args)
	case "find":
		err = cmdFind(args)
	case "find-traj":
		err = cmdFindTraj(args)
	case "show":
		err = cmdShow(args)
	case "subpath":
		err = cmdSubPath(args)
	case "verify":
		err = cmdVerify(args)
	case "find-interval":
		err = cmdFindInterval(args)
	case "count-interval":
		err = cmdCountInterval(args)
	case "ingest":
		err = cmdIngest(args)
	case "compact":
		err = cmdCompact(args)
	case "convert":
		err = cmdConvert(args)
	case "roadnet-gen":
		err = cmdRoadnetGen(args)
	case "gps-simulate":
		err = cmdGPSSimulate(args)
	case "gps-ingest":
		err = cmdGPSIngest(args)
	case "subscribe":
		err = cmdSubscribe(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cinct %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: cinct {build|build-temporal|stats|count|find|find-traj|show|subpath|verify|find-interval|count-interval|ingest|compact|convert|roadnet-gen|gps-simulate|gps-ingest|subscribe} [flags]")
	os.Exit(2)
}

// searchResult is one drained Search: the hits (nil for CountOnly),
// the summary count (full occurrence count for CountOnly, hit count
// otherwise), and the resume cursor ("" when the stream is
// exhausted).
type searchResult struct {
	hits   []cinct.Hit
	count  int
	cursor string
}

// querier is the transport-independent query surface the subcommands
// run against: a local engine over an index file, or a server.Client
// speaking to a daemon's streaming query endpoint. Both satisfy it
// with identical semantics — that equivalence is what server's
// differential tests pin down. Every retrieval operation is one
// Search call with a cinct.Query descriptor.
type querier interface {
	Info(ctx context.Context) (engine.Info, error)
	Search(ctx context.Context, q cinct.Query) (searchResult, error)
	Trajectory(ctx context.Context, id int) ([]uint32, error)
	SubPath(ctx context.Context, id, from, to int) ([]uint32, error)
}

// target holds the shared flags selecting what a query subcommand
// talks to.
type target struct {
	index  *string // local index file
	remote *string // daemon base URL
	name   *string // index name at the daemon
	// temporal forces temporal loading for local files regardless of
	// extension (find-interval).
	temporal bool
}

func addTargetFlags(fs *flag.FlagSet) *target {
	return &target{
		index:  fs.String("index", "", "local index file"),
		remote: fs.String("remote", "", "cinctd base URL (e.g. http://localhost:8132)"),
		name:   fs.String("name", "", "index name at the daemon (with -remote)"),
	}
}

func (t *target) open() (querier, error) {
	switch {
	case *t.remote != "" && *t.index != "":
		return nil, fmt.Errorf("-index and -remote are mutually exclusive")
	case *t.remote != "":
		if *t.name == "" {
			return nil, fmt.Errorf("-name is required with -remote")
		}
		return &remoteQuerier{c: server.NewClient(*t.remote, nil), name: *t.name}, nil
	case *t.index != "":
		eng := engine.New(engine.Options{})
		const name = "local"
		var err error
		if t.temporal {
			err = eng.LoadTemporal(name, *t.index)
		} else {
			err = eng.Load(name, *t.index)
		}
		if err != nil {
			return nil, err
		}
		return &localQuerier{eng: eng, name: name}, nil
	}
	return nil, fmt.Errorf("-index (local file) or -remote (daemon URL) is required")
}

// localQuerier serves queries from an engine in this process.
type localQuerier struct {
	eng  *engine.Engine
	name string
}

func (q *localQuerier) Info(ctx context.Context) (engine.Info, error) {
	return q.eng.Info(q.name)
}
func (q *localQuerier) Search(ctx context.Context, query cinct.Query) (searchResult, error) {
	r, err := q.eng.Search(ctx, q.name, query)
	if err != nil {
		return searchResult{}, err
	}
	defer r.Close()
	if query.Kind == cinct.CountOnly {
		n, cerr := r.Count()
		return searchResult{count: n}, cerr
	}
	var hits []cinct.Hit
	for h, herr := range r.All() {
		if herr != nil {
			return searchResult{}, herr
		}
		hits = append(hits, h)
	}
	return searchResult{hits: hits, count: len(hits), cursor: r.Cursor()}, nil
}
func (q *localQuerier) Trajectory(ctx context.Context, id int) ([]uint32, error) {
	return q.eng.Trajectory(ctx, q.name, id)
}
func (q *localQuerier) SubPath(ctx context.Context, id, from, to int) ([]uint32, error) {
	return q.eng.SubPath(ctx, q.name, id, from, to)
}

// remoteQuerier serves queries from a cinctd daemon.
type remoteQuerier struct {
	c    *server.Client
	name string
}

func (q *remoteQuerier) Info(ctx context.Context) (engine.Info, error) {
	infos, err := q.c.Indexes(ctx)
	if err != nil {
		return engine.Info{}, err
	}
	for _, info := range infos {
		if info.Name == q.name {
			return info, nil
		}
	}
	return engine.Info{}, fmt.Errorf("%w: %q", engine.ErrNotFound, q.name)
}
func (q *remoteQuerier) Search(ctx context.Context, query cinct.Query) (searchResult, error) {
	// CountOnly and bounded queries fit one page, which carries the
	// resume cursor; unbounded ones drain via the transparently paging
	// iterator.
	if query.Kind == cinct.CountOnly || query.Limit > 0 {
		page, err := q.c.SearchPage(ctx, q.name, query)
		if err != nil {
			return searchResult{}, err
		}
		return searchResult{hits: page.Hits, count: page.Count, cursor: page.Cursor}, nil
	}
	var hits []cinct.Hit
	for h, err := range q.c.Search(ctx, q.name, query) {
		if err != nil {
			return searchResult{}, err
		}
		hits = append(hits, h)
	}
	return searchResult{hits: hits, count: len(hits)}, nil
}
func (q *remoteQuerier) Trajectory(ctx context.Context, id int) ([]uint32, error) {
	return q.c.Trajectory(ctx, q.name, id)
}
func (q *remoteQuerier) SubPath(ctx context.Context, id, from, to int) ([]uint32, error) {
	return q.c.SubPath(ctx, q.name, id, from, to)
}

func readCorpus(path string) ([][]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trajio.Read(f)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input corpus file")
	out := fs.String("index", "", "output index file")
	block := fs.Int("block", 63, "RRR block size (15, 31 or 63)")
	sample := fs.Int("sample", 64, "SA sample rate (0 = count-only index)")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"corpus partitions built and queried in parallel (1 = monolithic)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -index are required")
	}
	trajs, err := readCorpus(*in)
	if err != nil {
		return err
	}
	opts := cinct.DefaultOptions()
	opts.Block = *block
	opts.SampleRate = *sample
	opts.Shards = *shards
	t0 := time.Now()
	ix, err := cinct.Build(trajs, opts)
	if err != nil {
		return err
	}
	buildTime := time.Since(t0)
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	n, err := ix.Save(of)
	if err != nil {
		return err
	}
	s := ix.Stats()
	fmt.Printf("indexed %d trajectories (%d symbols, %d shard(s)) in %v\n",
		s.Trajectories, s.TextLen, s.Shards, buildTime.Round(time.Millisecond))
	fmt.Printf("index: %d bytes on disk, %.2f bits/symbol in memory\n", n, s.BitsPerSymbol)
	return nil
}

// cmdBuildTemporal indexes a corpus together with a timestamps file
// (same line-per-trajectory layout; times[k][i] = entry time of edge i).
func cmdBuildTemporal(args []string) error {
	fs := flag.NewFlagSet("build-temporal", flag.ExitOnError)
	in := fs.String("in", "", "input corpus file")
	timesPath := fs.String("times", "", "timestamps file (aligned with -in)")
	out := fs.String("index", "", "output index file (use the .tcinct extension so cinctd recognizes it)")
	block := fs.Int("block", 63, "RRR block size (15, 31 or 63)")
	sample := fs.Int("sample", 64, "SA sample rate (must be > 0)")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"corpus partitions built and queried in parallel (1 = monolithic)")
	fs.Parse(args)
	if *in == "" || *timesPath == "" || *out == "" {
		return fmt.Errorf("-in, -times and -index are required")
	}
	trajs, err := readCorpus(*in)
	if err != nil {
		return err
	}
	tf, err := os.Open(*timesPath)
	if err != nil {
		return err
	}
	times, err := trajio.ReadTimes(tf)
	tf.Close()
	if err != nil {
		return err
	}
	opts := cinct.DefaultOptions()
	opts.Block = *block
	opts.SampleRate = *sample
	opts.Shards = *shards
	ix, err := cinct.BuildTemporal(trajs, times, opts)
	if err != nil {
		return err
	}
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	n, err := ix.Save(of)
	if err != nil {
		return err
	}
	fmt.Printf("temporal index: %d trajectories, %d bytes on disk (timestamps %.2f bits/entry)\n",
		ix.NumTrajectories(), n, float64(ix.TimestampBits())/float64(ix.Len()))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	t := addTargetFlags(fs)
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	info, err := q.Info(context.Background())
	if err != nil {
		return err
	}
	s := info.Stats
	fmt.Printf("shards:           %d\n", s.Shards)
	fmt.Printf("trajectories:     %d\n", s.Trajectories)
	fmt.Printf("distinct edges:   %d\n", s.Edges)
	fmt.Printf("|T|:              %d\n", s.TextLen)
	fmt.Printf("ET-graph edges:   %d (d̄ = %.2f, max out-degree %d)\n",
		s.ETGraphEdges, s.AvgOutDegree, s.MaxLabel)
	fmt.Printf("H0(φ(Tbwt)):      %.2f bits/symbol\n", s.LabelEntropy)
	fmt.Printf("wavelet tree:     %.2f bits/symbol\n", float64(s.WaveletBits)/float64(s.TextLen))
	fmt.Printf("ET-graph:         %.2f bits/symbol\n", float64(s.GraphBits)/float64(s.TextLen))
	fmt.Printf("C array:          %.2f bits/symbol\n", float64(s.CArrayBits)/float64(s.TextLen))
	fmt.Printf("locate samples:   %.2f bits/symbol\n", float64(s.LocateBits)/float64(s.TextLen))
	fmt.Printf("total (index):    %.2f bits/symbol\n", s.BitsPerSymbol)
	if info.Temporal {
		fmt.Printf("timestamps:       %.2f bits/entry\n", float64(info.TimestampBits)/float64(s.TextLen))
	}
	return nil
}

func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	t := addTargetFlags(fs)
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	t0 := time.Now()
	res, err := q.Search(context.Background(), cinct.Query{Path: p, Kind: cinct.CountOnly})
	if err != nil {
		return err
	}
	fmt.Printf("%d occurrences (%v)\n", res.count, time.Since(t0))
	return nil
}

func cmdFind(args []string) error {
	fs := flag.NewFlagSet("find", flag.ExitOnError)
	t := addTargetFlags(fs)
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	limit := fs.Int("limit", 20, "max matches to report (0 = all)")
	cursor := fs.String("cursor", "", "resume cursor from a previous bounded find")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	res, err := q.Search(context.Background(), cinct.Query{
		Path: p, Kind: cinct.Occurrences, Limit: *limit, Cursor: *cursor,
	})
	if err != nil {
		return err
	}
	for _, h := range res.hits {
		fmt.Printf("trajectory %d @ offset %d\n", h.Trajectory, h.Offset)
	}
	fmt.Printf("%d match(es)\n", len(res.hits))
	if res.cursor != "" {
		fmt.Printf("next: -cursor %s\n", res.cursor)
	}
	return nil
}

// cmdFindTraj lists the distinct trajectories containing a path — the
// Trajectories query kind, which before the unified query endpoint had
// no remote form at all.
func cmdFindTraj(args []string) error {
	fs := flag.NewFlagSet("find-traj", flag.ExitOnError)
	t := addTargetFlags(fs)
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	limit := fs.Int("limit", 20, "max trajectories to report (0 = all)")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	res, err := q.Search(context.Background(), cinct.Query{
		Path: p, Kind: cinct.Trajectories, Limit: *limit,
	})
	if err != nil {
		return err
	}
	for _, h := range res.hits {
		fmt.Printf("trajectory %d\n", h.Trajectory)
	}
	fmt.Printf("%d trajectorie(s)\n", len(res.hits))
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	t := addTargetFlags(fs)
	traj := fs.Int("traj", 0, "trajectory ID")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	tr, err := q.Trajectory(context.Background(), *traj)
	if err != nil {
		return err
	}
	printEdges(tr)
	return nil
}

func cmdSubPath(args []string) error {
	fs := flag.NewFlagSet("subpath", flag.ExitOnError)
	t := addTargetFlags(fs)
	traj := fs.Int("traj", 0, "trajectory ID")
	from := fs.Int("from", 0, "first edge offset (inclusive)")
	to := fs.Int("to", 0, "last edge offset (exclusive)")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	sub, err := q.SubPath(context.Background(), *traj, *from, *to)
	if err != nil {
		return err
	}
	printEdges(sub)
	return nil
}

// cmdFindInterval runs a strict path query against a temporal index.
func cmdFindInterval(args []string) error {
	fs := flag.NewFlagSet("find-interval", flag.ExitOnError)
	t := addTargetFlags(fs)
	t.temporal = true
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	from := fs.Int64("from", 0, "interval start (inclusive)")
	to := fs.Int64("to", 1<<62, "interval end (inclusive)")
	limit := fs.Int("limit", 20, "max matches (0 = all)")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	res, err := q.Search(context.Background(), cinct.Query{
		Path:     p,
		Interval: &cinct.Interval{From: *from, To: *to},
		Kind:     cinct.Occurrences,
		Limit:    *limit,
	})
	if err != nil {
		return err
	}
	for _, h := range res.hits {
		fmt.Printf("trajectory %d @ offset %d, entered t=%d\n",
			h.Trajectory, h.Offset, h.EnteredAt)
	}
	fmt.Printf("%d match(es)\n", len(res.hits))
	return nil
}

// cmdCountInterval counts strict-path-query matches in a time interval.
func cmdCountInterval(args []string) error {
	fs := flag.NewFlagSet("count-interval", flag.ExitOnError)
	t := addTargetFlags(fs)
	t.temporal = true
	path := fs.String("path", "", "space-separated edge IDs in travel order")
	from := fs.Int64("from", 0, "interval start (inclusive)")
	to := fs.Int64("to", 1<<62, "interval end (inclusive)")
	fs.Parse(args)
	q, err := t.open()
	if err != nil {
		return err
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	t0 := time.Now()
	res, err := q.Search(context.Background(), cinct.Query{
		Path:     p,
		Interval: &cinct.Interval{From: *from, To: *to},
		Kind:     cinct.CountOnly,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d occurrences in [%d, %d] (%v)\n", res.count, *from, *to, time.Since(t0))
	return nil
}

// cmdIngest appends trajectories from a corpus file to a live index —
// remotely through the daemon's NDJSON /v1/{index}/ingest endpoint,
// or locally by loading the index file, appending, sealing, and
// letting the engine persist the sealed result back to the same file
// (local mode always seals: an unsealed delta would die with the
// process).
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	t := addTargetFlags(fs)
	in := fs.String("in", "", "corpus file of trajectories to append")
	timesPath := fs.String("times", "", "timestamps file aligned with -in (required for temporal indexes)")
	seal := fs.Bool("seal", false, "compact the delta into a sealed shard after appending (implied in -index mode)")
	batch := fs.Int("batch", 500, "records per append batch")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *batch <= 0 {
		return fmt.Errorf("-batch must be > 0")
	}
	trajs, err := readCorpus(*in)
	if err != nil {
		return err
	}
	var times [][]int64
	if *timesPath != "" {
		tf, err := os.Open(*timesPath)
		if err != nil {
			return err
		}
		times, err = trajio.ReadTimes(tf)
		tf.Close()
		if err != nil {
			return err
		}
		if len(times) != len(trajs) {
			return fmt.Errorf("%d timestamp lines for %d trajectories", len(times), len(trajs))
		}
	}
	ctx := context.Background()
	t0 := time.Now()

	switch {
	case *t.remote != "" && *t.index != "":
		return fmt.Errorf("-index and -remote are mutually exclusive")
	case *t.remote != "":
		if *t.name == "" {
			return fmt.Errorf("-name is required with -remote")
		}
		c := server.NewClient(*t.remote, nil)
		appended := 0
		for lo := 0; lo < len(trajs); lo += *batch {
			hi := lo + *batch
			if hi > len(trajs) {
				hi = len(trajs)
			}
			recs := make([]server.IngestRecord, hi-lo)
			for i := range recs {
				recs[i] = server.IngestRecord{Edges: trajs[lo+i]}
				if times != nil {
					recs[i].Times = times[lo+i]
				}
			}
			resp, err := c.Ingest(ctx, *t.name, recs, false)
			if err != nil {
				return err
			}
			appended += resp.Appended
		}
		fmt.Printf("appended %d trajectories in %v\n", appended, time.Since(t0).Round(time.Millisecond))
		if *seal {
			sres, err := c.Seal(ctx, *t.name)
			if err != nil {
				return err
			}
			fmt.Printf("sealed %d trajectories (delta now %d, generation %d)\n",
				sres.Sealed, sres.Delta, sres.Generation)
		}
		return nil
	case *t.index != "":
		eng := engine.New(engine.Options{SealThreshold: -1})
		const name = "local"
		temporal := *timesPath != "" || strings.HasSuffix(*t.index, ".tcinct")
		var lerr error
		if temporal {
			lerr = eng.LoadTemporal(name, *t.index)
		} else {
			lerr = eng.Load(name, *t.index)
		}
		if lerr != nil {
			return lerr
		}
		appended := 0
		for lo := 0; lo < len(trajs); lo += *batch {
			hi := lo + *batch
			if hi > len(trajs) {
				hi = len(trajs)
			}
			var bt [][]int64
			if times != nil {
				bt = times[lo:hi]
			}
			res, err := eng.Append(ctx, name, trajs[lo:hi], bt)
			if err != nil {
				return err
			}
			appended += res.Appended
		}
		sres, err := eng.Seal(ctx, name)
		if err != nil {
			return err
		}
		fmt.Printf("appended %d trajectories, sealed %d, persisted to %s (%v)\n",
			appended, sres.Sealed, *t.index, time.Since(t0).Round(time.Millisecond))
		return nil
	}
	return fmt.Errorf("-index (local file) or -remote (daemon URL) is required")
}

// cmdCompact merges an index's sealed shards: against a daemon it
// calls POST /v1/{index}/compact; against a local file it loads the
// index, compacts, and persists the result in place. -full merges all
// the way down to a single shard instead of stopping at the tiered
// policy's fixpoint.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	t := addTargetFlags(fs)
	full := fs.Bool("full", true, "merge down to a single shard (false = default tiered policy)")
	temporal := fs.Bool("temporal", false, "force temporal loading regardless of file extension (with -index)")
	fs.Parse(args)
	ctx := context.Background()
	t0 := time.Now()

	report := func(merged, rows, before, after int) {
		if merged == 0 {
			fmt.Printf("already compact: %d shard(s), nothing to merge (%v)\n",
				after, time.Since(t0).Round(time.Millisecond))
			return
		}
		fmt.Printf("compacted %d shards down to %d (%d trajectories re-compressed, %v)\n",
			before, after, rows, time.Since(t0).Round(time.Millisecond))
	}

	switch {
	case *t.remote != "" && *t.index != "":
		return fmt.Errorf("-index and -remote are mutually exclusive")
	case *t.remote != "":
		if *t.name == "" {
			return fmt.Errorf("-name is required with -remote")
		}
		c := server.NewClient(*t.remote, nil)
		resp, err := c.Compact(ctx, *t.name, *full)
		if err != nil {
			return err
		}
		report(resp.Merged, resp.Rows, resp.ShardsBefore, resp.ShardsAfter)
		return nil
	case *t.index != "":
		eng := engine.New(engine.Options{SealThreshold: -1})
		const name = "local"
		var lerr error
		if *temporal || strings.HasSuffix(*t.index, ".tcinct") {
			lerr = eng.LoadTemporal(name, *t.index)
		} else {
			lerr = eng.Load(name, *t.index)
		}
		if lerr != nil {
			return lerr
		}
		res, err := eng.Compact(ctx, name, *full)
		if err != nil {
			return err
		}
		report(res.Merged, res.Rows, res.ShardsBefore, res.ShardsAfter)
		return nil
	}
	return fmt.Errorf("-index (local file) or -remote (daemon URL) is required")
}

// cmdVerify cross-checks the index against the original corpus: counts
// of sampled sub-paths versus a naive scan, and full reconstruction of
// sampled trajectories. With -remote it doubles as an end-to-end check
// of a live daemon.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	t := addTargetFlags(fs)
	in := fs.String("in", "", "original corpus file")
	samples := fs.Int("samples", 200, "number of sampled checks")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	trajs, err := readCorpus(*in)
	if err != nil {
		return err
	}
	q, err := t.open()
	if err != nil {
		return err
	}
	ctx := context.Background()
	info, err := q.Info(ctx)
	if err != nil {
		return err
	}
	if info.Stats.Trajectories != len(trajs) {
		return fmt.Errorf("index holds %d trajectories, corpus has %d",
			info.Stats.Trajectories, len(trajs))
	}
	sampler := querygen.New(trajs, 2, 5, 1)
	for checked := 0; checked < *samples; checked++ {
		path := sampler.Next()
		if path == nil {
			break
		}
		res, err := q.Search(ctx, cinct.Query{Path: path, Kind: cinct.CountOnly})
		if err != nil {
			return err
		}
		if got, want := res.count, querygen.NaiveCount(trajs, path); got != want {
			return fmt.Errorf("MISMATCH: Count(%v) = %d, naive scan = %d", path, got, want)
		}
	}
	// Reconstruction spot checks, evenly spread over the ID space.
	recons := *samples/10 + 1
	for k := 0; k < recons; k++ {
		id := k * len(trajs) / recons
		got, err := q.Trajectory(ctx, id)
		if err != nil {
			return err
		}
		if len(got) != len(trajs[id]) {
			return fmt.Errorf("MISMATCH: trajectory %d length %d, corpus %d",
				id, len(got), len(trajs[id]))
		}
		for i := range got {
			if got[i] != trajs[id][i] {
				return fmt.Errorf("MISMATCH: trajectory %d differs at %d", id, i)
			}
		}
	}
	fmt.Printf("verified: %d count checks and %d reconstructions OK\n", *samples, recons)
	return nil
}

func printEdges(edges []uint32) {
	for i, e := range edges {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(e)
	}
	fmt.Println()
}

func parsePath(s string) ([]uint32, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty -path")
	}
	out := make([]uint32, len(fields))
	for i, fld := range fields {
		v, err := strconv.ParseUint(fld, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad edge ID %q: %v", fld, err)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// cmdConvert rewrites a v1/v2 (or v3) index file into the v3
// page-aligned container, the format cinctd -mmap and OpenMapped
// serve zero-copy. The write goes through a temp file and an atomic
// rename, so an interrupted convert never leaves a torn output.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input index file (v1/v2/v3)")
	out := fs.String("out", "", "output v3 container file")
	temporal := fs.Bool("temporal", false,
		"treat the input as a temporal index (implied by a .tcinct extension)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var save func(w io.Writer) (int64, error)
	var stats cinct.Stats
	if *temporal || strings.HasSuffix(*in, engine.ExtTemporal) {
		tix, err := cinct.LoadTemporal(f)
		if err != nil {
			return err
		}
		save, stats = tix.SaveV3, tix.Index.Stats()
	} else {
		ix, err := cinct.Load(f)
		if err != nil {
			return err
		}
		save, stats = ix.SaveV3, ix.Stats()
	}
	tmp := *out + ".tmp"
	of, err := os.Create(tmp)
	if err != nil {
		return err
	}
	n, err := save(of)
	if cerr := of.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return err
	}
	if err := os.Rename(tmp, *out); err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s: %d trajectories, %d shard(s), %d bytes (v3, page-aligned)\n",
		*in, *out, stats.Trajectories, stats.Shards, n)
	return nil
}
