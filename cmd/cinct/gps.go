package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cinct/internal/gps"
	"cinct/internal/roadnet"
	"cinct/server"
)

// The raw-GPS pipeline subcommands: roadnet-gen fabricates a road
// network container, gps-simulate fabricates noisy device traces along
// known paths (with the ground truth on the side), gps-ingest posts
// traces to a daemon's map-matching endpoint, and subscribe registers
// a standing query and streams its notifications.

// cmdRoadnetGen writes a synthetic grid road network as a CNCTroad
// container — the artifact cinctd -roadnet and the gps subcommands
// consume.
func cmdRoadnetGen(args []string) error {
	fs := flag.NewFlagSet("roadnet-gen", flag.ExitOnError)
	out := fs.String("out", "", "output CNCTroad container file")
	w := fs.Int("w", 8, "grid width (nodes)")
	h := fs.Int("h", 8, "grid height (nodes)")
	seed := fs.Int64("seed", 1, "jitter seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	g := roadnet.Grid(*w, *h, *seed)
	if err := g.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("road network: %d nodes, %d edges -> %s\n", g.NumNodes(), g.NumEdges(), *out)
	return nil
}

// gpsWalk is a U-turn-free random walk over the road network — the
// ground-truth paths gps-simulate fabricates traces along.
func gpsWalk(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []roadnet.EdgeID{cur}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			break
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, cur)
	}
	return path
}

// cmdGPSSimulate fabricates noisy timed traces along random walks and
// writes them as the NDJSON batch POST /v1/{index}/gps accepts. With
// -truth it also writes the ground-truth edge paths in corpus format
// (one line per trace), so a script can check the matched result.
func cmdGPSSimulate(args []string) error {
	fs := flag.NewFlagSet("gps-simulate", flag.ExitOnError)
	roadnetPath := fs.String("roadnet", "", "CNCTroad container to simulate on")
	out := fs.String("out", "", "output NDJSON trace file (default stdout)")
	truth := fs.String("truth", "", "also write ground-truth edge paths here (corpus format)")
	n := fs.Int("n", 10, "number of traces")
	length := fs.Int("len", 12, "edges per ground-truth path")
	noise := fs.Float64("noise", 0.05, "GPS noise sigma (map units)")
	start := fs.Int64("start", 1000, "first trace's first timestamp")
	dt := fs.Int64("dt", 15, "seconds between observations")
	seed := fs.Int64("seed", 1, "randomness seed")
	fs.Parse(args)
	if *roadnetPath == "" {
		return fmt.Errorf("-roadnet is required")
	}
	g, err := roadnet.LoadFile(*roadnetPath)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var truthW *os.File
	if *truth != "" {
		if truthW, err = os.Create(*truth); err != nil {
			return err
		}
		defer truthW.Close()
	}
	rng := rand.New(rand.NewSource(*seed))
	enc := json.NewEncoder(w)
	at := *start
	for i := 0; i < *n; i++ {
		path := gpsWalk(g, rng, *length)
		tr := gps.Simulate(g, path, *noise, at, *dt, rng)
		at += int64(len(tr.Points))**dt + 1000
		if err := enc.Encode(tr); err != nil {
			return err
		}
		if truthW != nil {
			var line bytes.Buffer
			for j, e := range path {
				if j > 0 {
					line.WriteByte(' ')
				}
				fmt.Fprintf(&line, "%d", e)
			}
			line.WriteByte('\n')
			if _, err := truthW.Write(line.Bytes()); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "simulated %d traces over %d-edge walks (noise %.3f)\n", *n, *length, *noise)
	return nil
}

// readTraces decodes an NDJSON trace file.
func readTraces(path string) ([]gps.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var traces []gps.Trace
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var tr gps.Trace
		if err := json.Unmarshal(line, &tr); err != nil {
			return nil, fmt.Errorf("trace %d: %v", len(traces), err)
		}
		traces = append(traces, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return traces, nil
}

// cmdGPSIngest posts raw GPS traces to a daemon's map-matching ingest
// endpoint and reports the per-trace outcomes: accepted IDs and the
// reject-reason tally.
func cmdGPSIngest(args []string) error {
	fs := flag.NewFlagSet("gps-ingest", flag.ExitOnError)
	remote := fs.String("remote", "", "cinctd base URL (required)")
	name := fs.String("name", "", "index name at the daemon (required)")
	in := fs.String("in", "", "NDJSON trace file (gps-simulate output)")
	batch := fs.Int("batch", 200, "traces per request")
	verbose := fs.Bool("v", false, "print one line per trace")
	fs.Parse(args)
	if *remote == "" || *name == "" || *in == "" {
		return fmt.Errorf("-remote, -name and -in are required")
	}
	if *batch <= 0 {
		return fmt.Errorf("-batch must be > 0")
	}
	traces, err := readTraces(*in)
	if err != nil {
		return err
	}
	c := server.NewClient(*remote, nil)
	ctx := context.Background()
	t0 := time.Now()
	accepted, rejected, points := 0, 0, 0
	reasons := map[string]int{}
	for lo := 0; lo < len(traces); lo += *batch {
		hi := lo + *batch
		if hi > len(traces) {
			hi = len(traces)
		}
		resp, err := c.IngestGPS(ctx, *name, traces[lo:hi])
		if err != nil {
			return err
		}
		accepted += resp.Accepted
		rejected += resp.Rejected
		points += resp.Points
		for i, r := range resp.Results {
			if !r.Accepted {
				reasons[r.Reject]++
			}
			if *verbose {
				if r.Accepted {
					fmt.Printf("trace %d: accepted as trajectory %d (%d edges, %d skipped)\n",
						lo+i, r.ID, r.Edges, r.Skipped)
				} else {
					fmt.Printf("trace %d: rejected (%s, point %d)\n", lo+i, r.Reject, r.Point)
				}
			}
		}
	}
	fmt.Printf("ingested %d/%d traces (%d points) in %v\n",
		accepted, len(traces), points, time.Since(t0).Round(time.Millisecond))
	for reason, n := range reasons {
		fmt.Printf("  rejected %d: %s\n", n, reason)
	}
	_ = rejected
	return nil
}

// cmdSubscribe registers a standing query on a daemon and streams its
// notifications to stdout as JSON lines — over SSE by default, or the
// long-poll fallback with -poll. It runs until the subscription ends
// (TTL expiry, daemon shutdown) or the process is interrupted.
func cmdSubscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	remote := fs.String("remote", "", "cinctd base URL (required)")
	name := fs.String("name", "", "index name at the daemon (required)")
	path := fs.String("path", "", "space-separated edge IDs the standing query watches")
	from := fs.Int64("from", 0, "interval start (with -to; temporal indexes only)")
	to := fs.Int64("to", 0, "interval end (with -from; temporal indexes only)")
	ttl := fs.Duration("ttl", 0, "subscription lifetime (0 = server default, 15m)")
	poll := fs.Bool("poll", false, "use the long-poll fallback instead of SSE")
	fs.Parse(args)
	if *remote == "" || *name == "" {
		return fmt.Errorf("-remote and -name are required")
	}
	p, err := parsePath(*path)
	if err != nil {
		return err
	}
	req := server.SubscribeRequest{Path: p, TTLSeconds: int(*ttl / time.Second)}
	if fs.Lookup("from").Value.String() != fs.Lookup("from").DefValue ||
		fs.Lookup("to").Value.String() != fs.Lookup("to").DefValue {
		req.From, req.To = from, to
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := server.NewClient(*remote, nil)
	sub, err := c.Subscribe(ctx, *name, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "subscribed: %s (expires %s)\n",
		sub.Subscription, time.Unix(sub.ExpiresAt, 0).Format(time.RFC3339))
	defer func() {
		// Best-effort cancel so the daemon does not hold the buffer
		// until TTL expiry; a fresh context because ctx may be done.
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c.Unsubscribe(cctx, *name, sub.Subscription) //nolint:errcheck // the TTL reaps it anyway
	}()
	enc := json.NewEncoder(os.Stdout)
	if *poll {
		for {
			resp, err := c.Poll(ctx, *name, sub.Subscription, 30*time.Second)
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
			for _, n := range resp.Notifications {
				if err := enc.Encode(n); err != nil {
					return err
				}
			}
			if resp.Closed {
				return nil
			}
		}
	}
	for n, err := range c.Notifications(ctx, *name, sub.Subscription) {
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if err := enc.Encode(n); err != nil {
			return err
		}
	}
	return nil
}
