// Command cinctd is the CiNCT query daemon: it loads every index from
// a data directory into an engine catalog and serves JSON queries over
// HTTP until interrupted, then shuts down gracefully.
//
//	cinctd -data ./indexes -addr :8132
//
// The data directory holds *.cinct (spatial) and *.tcinct (temporal)
// files; each is served under its base filename:
//
//	GET  /v1/indexes                       catalog + stats + runtime gauges
//	GET  /metrics                          Prometheus text-format metrics
//	GET  /v1/{index}/count?path=1,2,3      occurrence count
//	GET  /v1/{index}/find?path=1,2,3&limit=10
//	GET  /v1/{index}/trajectory/{id}       full reconstruction
//	GET  /v1/{index}/subpath?traj=5&from=2&to=9
//	GET  /v1/{index}/temporal/find?path=1,2&from=0&to=999&limit=10
//	POST /v1/{index}/ingest                NDJSON append batch (live ingestion)
//	POST /v1/{index}/gps                   NDJSON raw GPS traces → map-match → append
//	POST /v1/{index}/subscribe             register a standing query
//	GET  /v1/{index}/subscriptions/{id}/events   SSE notification stream
//	GET  /v1/{index}/subscriptions/{id}/poll     long-poll fallback
//	DELETE /v1/{index}/subscriptions/{id}  cancel a standing query
//	POST /v1/{index}/seal                  compact the delta, persist to the data dir
//	POST /v1/{index}/compact               merge sealed shards (?full=true → one shard)
//	POST /v1/{index}/reload                re-read from disk, bump generation
//
// Raw-GPS ingestion needs a road network: each -roadnet flag (repeatable)
// attaches a CNCTroad container, either to one index ("name=file.road")
// or as the default for every index ("file.road").
//
// Appended trajectories live in an in-memory delta (immediately
// queryable); once the delta reaches -seal-threshold trajectories a
// background seal compacts it into a compressed shard and persists
// the sealed index back to its file in the data dir. With -wal set,
// every acknowledged append is also written to a per-index
// write-ahead log and replayed on restart, so appends survive a crash
// between seals; with -compact-interval set, a background compactor
// keeps each live index's sealed-shard fan-out bounded by the tiered
// policy (-compact-min-shards / -compact-max-shards / -compact-ratio).
//
// Cluster mode (phase 1): each -peer flag (repeatable) names another
// node serving the same corpus, and -advertise names this node as the
// peers reach it. POST /v1/{index}/query then scatter-gathers — each
// node answers for the trajectory ranges the routing ring assigns it —
// and merges the legs into the same canonical order a single node
// would produce. -cluster-slot tunes the routing granularity (must
// agree across nodes); -peer-timeout, -peer-retry and -hedge-after
// tune the fan-out robustness.
//
// Traffic management: -rate-limit enforces a per-client request budget
// (429 + Retry-After past it), -max-inflight sheds requests beyond the
// concurrency gate with 503, -shed-cost rejects expensive queries when
// the worker pool is saturated instead of queueing them, and
// -slow-query logs every query over the threshold with its full cost
// account. GET /metrics exposes the whole operational surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only when -pprof is set
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cinct"
	"cinct/internal/cluster"
	"cinct/internal/engine"
	"cinct/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8132", "listen address")
		data    = flag.String("data", "", "directory of *.cinct / *.tcinct index files (required)")
		workers = flag.Int("workers", 0, "max concurrent index traversals (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 0, "result cache entries (0 = default 4096, negative = off)")
		sealAt  = flag.Int("seal-threshold", 0,
			"auto-seal an index's ingest delta at this many trajectories (0 = default 4096, negative = manual sealing only)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout (negative = none)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		mmap    = flag.Bool("mmap", false,
			"serve v3 container files zero-copy via mmap (v1/v2 files still heap-load; convert with `cinct convert`)")
		pprofAddr = flag.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
		walDir = flag.String("wal", "",
			"write-ahead log directory (one subdirectory per index); empty disables the WAL")
		walSync = flag.Duration("wal-sync", 0,
			"WAL group-commit fsync interval (0 = 50ms default, negative = no timer)")
		walSyncBytes = flag.Int("wal-sync-bytes", 0,
			"fsync the WAL once this many unsynced bytes accumulate (0 = 1MiB default, negative = every append)")
		compactEvery = flag.Duration("compact-interval", 0,
			"background compaction sweep cadence (0 disables; POST /v1/{index}/compact always works)")
		compactMin = flag.Int("compact-min-shards", 0,
			"merge a tier once it holds this many coherent-sized shards (0 = default 4)")
		compactMax = flag.Int("compact-max-shards", 0,
			"merge at most this many shards per round (0 = default 16)")
		compactRatio = flag.Int("compact-ratio", 0,
			"shards within this size ratio form one tier (0 = default 8)")
		rateLimit = flag.Float64("rate-limit", 0,
			"per-client request budget in requests/second, keyed by X-Client-ID or remote IP (0 disables; over-budget requests get 429 + Retry-After)")
		rateBurst = flag.Int("rate-burst", 0,
			"per-client token-bucket depth (0 = 2x rate-limit)")
		maxInflight = flag.Int("max-inflight", 0,
			"shed API requests beyond this many in flight with 503 instead of queueing (0 disables the gate)")
		slowQuery = flag.Duration("slow-query", 0,
			"log every query at least this slow with its full cost account (0 disables)")
		shedCost = flag.Int64("shed-cost", 0,
			"with all workers busy, reject queries whose estimated cost reaches this threshold with 503 instead of queueing (0 = queue everything)")
	)
	var (
		advertise = flag.String("advertise", "",
			"this node's base URL as peers reach it (e.g. http://node1:8132); required with -peer")
		clusterSlot = flag.Int("cluster-slot", 0,
			"trajectory IDs per routing slot; must agree across the cluster (0 = default 1024)")
		peerTimeout = flag.Duration("peer-timeout", 0,
			"per-attempt deadline for scatter-gather page fetches (0 = 2s)")
		peerRetry = flag.Duration("peer-retry", 0,
			"backoff before the single retry of a failed page fetch (0 = 100ms)")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"issue a hedged duplicate fetch after this delay (0 = adaptive from the peer's p99, negative disables)")
	)
	var peerAddrs []string
	flag.Func("peer",
		"peer node base URL for cluster mode, e.g. http://node2:8132 (repeatable; every node lists every other)",
		func(v string) error {
			if strings.TrimSpace(v) == "" {
				return fmt.Errorf("empty peer address")
			}
			peerAddrs = append(peerAddrs, v)
			return nil
		})
	type roadnetBinding struct{ index, path string }
	var roadnets []roadnetBinding
	flag.Func("roadnet",
		"attach a CNCTroad road-network container for raw GPS ingest: \"index=file.road\" binds one index, \"file.road\" is the default for all (repeatable)",
		func(v string) error {
			b := roadnetBinding{path: v}
			if i := strings.IndexByte(v, '='); i >= 0 {
				b.index, b.path = v[:i], v[i+1:]
			}
			if b.path == "" {
				return fmt.Errorf("empty road-network path")
			}
			roadnets = append(roadnets, b)
			return nil
		})
	flag.Parse()
	logger := log.New(os.Stderr, "cinctd: ", log.LstdFlags)
	if *data == "" {
		logger.Fatal("-data is required")
	}

	if *pprofAddr != "" {
		// Profiling stays off the query listener: pprof binds its own
		// address (keep it loopback in production) with the default
		// mux, which net/http/pprof's import hooks populate.
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			logger.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	var cl *cluster.Cluster
	if len(peerAddrs) > 0 {
		if *advertise == "" {
			logger.Fatal("-peer requires -advertise (this node's own base URL)")
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:             *advertise,
			Peers:            peerAddrs,
			SlotTrajectories: *clusterSlot,
			Timeout:          *peerTimeout,
			RetryBackoff:     *peerRetry,
			HedgeAfter:       *hedgeAfter,
		})
		if err != nil {
			logger.Fatalf("cluster: %v", err)
		}
	} else if *advertise != "" {
		logger.Fatal("-advertise without any -peer flag; did you forget the peers?")
	}

	eng := engine.New(engine.Options{
		Workers: *workers, CacheEntries: *cache,
		Cluster:       cl,
		SealThreshold: *sealAt, Logf: logger.Printf,
		Mmap:      *mmap,
		SlowQuery: *slowQuery,
		ShedCost:  *shedCost,
		WAL: engine.WALOptions{
			Dir: *walDir, SyncInterval: *walSync, SyncBytes: *walSyncBytes,
		},
		Compaction: engine.CompactionOptions{
			Interval: *compactEvery,
			Policy: cinct.CompactionPolicy{
				MinShards: *compactMin, MaxShards: *compactMax, TierRatio: *compactRatio,
			},
		},
	})
	defer eng.CloseAll()
	names, err := eng.OpenDir(*data)
	if err != nil {
		logger.Fatalf("loading %s: %v", *data, err)
	}
	if len(names) == 0 {
		logger.Fatalf("no *%s or *%s files under %s", engine.ExtSpatial, engine.ExtTemporal, *data)
	}
	for _, name := range names {
		info, err := eng.Info(name)
		if err != nil {
			logger.Fatalf("stat %s: %v", name, err)
		}
		kind := "spatial"
		if info.Temporal {
			kind = "temporal"
		}
		mode := "heap"
		if info.Mapped {
			mode = "mmap"
		}
		logger.Printf("loaded %q (%s, %s): %d trajectories, %d shard(s), %.2f bits/symbol",
			name, kind, mode, info.Stats.Trajectories, info.Stats.Shards, info.Stats.BitsPerSymbol)
	}
	for _, b := range roadnets {
		if err := eng.LoadRoadnet(b.index, b.path); err != nil {
			logger.Fatalf("loading road network %s: %v", b.path, err)
		}
	}

	if cl != nil {
		cl.Start()
		defer cl.Stop()
		logger.Printf("cluster mode: self=%s peers=%s slot=%d ring=%016x",
			cl.Self(), strings.Join(cl.Peers(), ","), cl.SlotTrajectories(), cl.Fingerprint())
	}

	srv := server.New(eng, server.Config{
		Addr: *addr, RequestTimeout: *timeout, Logger: logger,
		RateLimit: *rateLimit, RateBurst: *rateBurst, MaxInflight: *maxInflight,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("serving %s on %s", strings.Join(names, ", "), *addr)

	select {
	case err := <-errc:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
		return
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Printf("shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
		eng.Shutdown() // still sync the WALs before dying
		os.Exit(1)
	}
	// The listener has drained: stop the background compactor and
	// sync + close every write-ahead log before the process exits.
	eng.Shutdown()
	if err := <-errc; err != nil {
		logger.Fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "cinctd: bye")
}
