// Command cinctbench measures the serving stack end to end — index
// build time and size, then Count/Find latency distributions both
// in-process (through internal/engine, cache off and cache on) and
// over HTTP (through a live server on a loopback listener) — and
// writes the results as JSON so the repository's performance
// trajectory has comparable data points per PR.
//
// The temporal section builds a long-trajectory corpus with
// timestamps, then compares the interval-pushdown FindInInterval
// against an emulation of the pre-pushdown path (materialize every
// spatial hit, decode the timestamp column prefix per hit) on a
// selective interval whose matches sit at high offsets — the workload
// the rework targets — plus CountInInterval and both over HTTP.
//
// The streaming section measures the unified Search path on the same
// high-offset corpus: lazy, limit-bounded streaming versus the
// pre-redesign materialize-everything-then-truncate shape, reporting
// latency percentiles and allocated bytes per query at limit 10, 1000
// and unlimited.
//
// The ingestion section measures the live write path: per-row and
// batched append throughput into a Writer's delta, query p50/p99 with
// the delta hot (every appended row still uncompressed), the latency
// of one full seal, and the same queries after compaction.
//
// The serving section compares heap-decoded and mmap'd serving of the
// same v3 container: open latency (a full decode versus map +
// O(metadata) validation), Go-heap and process-RSS footprint, and
// warm query latency.
//
// The compaction section measures sealed-shard fan-out degradation:
// the same corpus split across 1, 4, 16 and 64 seals, query p50/p99
// and allocated bytes per query at each fan-out, then the 64-shard
// writer fully compacted and re-measured — plus bits/symbol of 64
// tiny models versus one merged model, and a WAL crash-replay leg
// reporting what fraction of acknowledged, unsealed appends a fresh
// engine recovers.
//
// The overload section drives a small-pool serving stack past
// saturation with a mixed workload — cheap counts (the traffic worth
// protecting) and unbounded occurrence scans (the traffic that
// saturates the pool) from many concurrent HTTP clients — once with
// plain FIFO queueing and once with cost-aware admission control
// shedding the scans, reporting goodput and p99 of the cheap queries
// under each regime.
//
// The cluster section measures phase-1 scatter-gather serving: the
// same corpus behind a single daemon versus a 2-node cluster on
// loopback listeners (each node answering for the trajectories the
// routing ring assigns it, the coordinator k-way merging the legs),
// reporting unified-query p50/p99 for both so the fan-out's
// coordination cost is a tracked number rather than folklore.
//
// The gps section measures the raw-ingestion pipeline: map-matcher
// throughput in observations per second over noisy traces simulated
// along known walks, the accept rate as GPS noise grows past the
// candidate radius, and standing-query freshness — the latency from
// an accepted row entering Append to its notification arriving on a
// subscriber channel, p50/p99.
//
//	cinctbench -out BENCH_PR10.json -trajs 4000 -queries 2000 -shards 0
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cinct"
	"cinct/internal/cluster"
	"cinct/internal/engine"
	"cinct/internal/gps"
	"cinct/internal/mapmatch"
	"cinct/internal/querygen"
	"cinct/internal/roadnet"
	"cinct/internal/trajgen"
	"cinct/server"
)

// percentiles summarizes one latency distribution in microseconds.
type percentiles struct {
	P50Us  float64 `json:"p50us"`
	P99Us  float64 `json:"p99us"`
	MeanUs float64 `json:"meanUs"`
}

type report struct {
	GoMaxProcs    int                    `json:"gomaxprocs"`
	Trajectories  int                    `json:"trajectories"`
	Symbols       int                    `json:"symbols"`
	DistinctEdges int                    `json:"distinctEdges"`
	Shards        int                    `json:"shards"`
	Queries       int                    `json:"queries"`
	FindLimit     int                    `json:"findLimit"`
	BuildSeconds  float64                `json:"buildSeconds"`
	IndexBytes    int64                  `json:"indexBytes"`
	BitsPerSymbol float64                `json:"bitsPerSymbol"`
	Latency       map[string]percentiles `json:"latency"`
	Temporal      *temporalReport        `json:"temporal,omitempty"`
	Streaming     *streamingReport       `json:"streaming,omitempty"`
	Ingest        *ingestReport          `json:"ingest,omitempty"`
	Serving       *servingReport         `json:"serving,omitempty"`
	Compaction    *compactionReport      `json:"compaction,omitempty"`
	Overload      *overloadReport        `json:"overload,omitempty"`
	GPS           *gpsReport             `json:"gps,omitempty"`
	Cluster       *clusterReport         `json:"cluster,omitempty"`
}

// clusterReport summarizes the scatter-gather section: the unified
// query path against one daemon versus a coordinator fanning the same
// workload out across the cluster and merging the legs.
type clusterReport struct {
	Nodes            int `json:"nodes"`
	SlotTrajectories int `json:"slotTrajectories"`
	Queries          int `json:"queries"`
	Limit            int `json:"limit"`
	// Latency keys: search.single (one daemon), search.scatter (the
	// coordinator node of the cluster), count.local (count-kind stays
	// local by design — the control measurement).
	Latency map[string]percentiles `json:"latency"`
}

// gpsReport summarizes the raw-GPS ingestion pipeline: HMM
// map-matching throughput and per-trace latency, the accept rate as
// simulated GPS noise grows, and standing-query freshness — how long
// after Append returns a subscribed consumer holds the notification.
type gpsReport struct {
	// Road network and workload shape.
	Nodes  int `json:"nodes"`
	Edges  int `json:"edges"`
	Traces int `json:"traces"`
	Points int `json:"points"`
	// WalkLen is the ground-truth path length each trace follows.
	WalkLen int `json:"walkLen"`
	// Noise is the sigma (map units) of the throughput workload; edge
	// length is 1.0, so 0.05 is a mild urban-canyon scatter.
	Noise float64 `json:"noise"`
	// MatchPointsPerSec is single-threaded Matcher.Match throughput in
	// observations per second; MatchLatency the per-trace distribution.
	MatchPointsPerSec float64     `json:"matchPointsPerSec"`
	MatchLatency      percentiles `json:"matchLatency"`
	// AcceptRate sweeps the noise sigma with everything else fixed:
	// past the candidate radius, points lose all candidates and traces
	// start rejecting.
	AcceptRate []gpsNoiseLeg `json:"acceptRate"`
	// ExactPathRate is the fraction of accepted throughput-workload
	// traces whose matched edge sequence equals the ground-truth walk.
	ExactPathRate float64 `json:"exactPathRate"`
	// NotifyLatency is append-to-notification delivery: a standing
	// query registered on the row's path, the pre-matched row fed to
	// Append, the clock stopped when the subscriber channel yields.
	NotifyLatency percentiles `json:"notifyLatency"`
}

// gpsNoiseLeg is one point on the accept-rate-vs-noise curve.
type gpsNoiseLeg struct {
	Noise    float64 `json:"noise"`
	Accepted int     `json:"accepted"`
	Total    int     `json:"total"`
	Rate     float64 `json:"rate"`
}

// overloadReport contrasts the serving stack past saturation with and
// without admission control. Both legs run the same mixed workload
// (alternating cheap counts and unbounded scans) from the same client
// count against the same index and worker pool; only the engine's
// ShedCost differs. Goodput counts successful cheap queries only —
// the traffic an operator is trying to protect.
type overloadReport struct {
	Workers     int     `json:"workers"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"durationSeconds"`
	// ShedCost is the admission threshold used in the protected leg.
	ShedCost    int64       `json:"shedCost"`
	Unprotected overloadLeg `json:"unprotected"`
	Protected   overloadLeg `json:"protected"`
	// GoodputGain / CheapP99Improvement are protected-over-unprotected
	// ratios: goodput up, cheap-query p99 down.
	GoodputGain         float64 `json:"goodputGain"`
	CheapP99Improvement float64 `json:"cheapP99Improvement"`
}

// overloadLeg is one regime's outcome counts and cheap-query latency.
type overloadLeg struct {
	Requests int `json:"requests"`
	// OK counts successful cheap queries; ScanOK successful scans.
	OK     int `json:"ok"`
	ScanOK int `json:"scanOk"`
	// Shed counts 503s (admission control), Timeouts 504s (requests
	// that queued past the request deadline), Errors everything else.
	Shed       int     `json:"shed"`
	Timeouts   int     `json:"timeouts"`
	Errors     int     `json:"errors"`
	GoodputQPS float64 `json:"goodputQps"`
	CheapP50Us float64 `json:"cheapP50us"`
	CheapP99Us float64 `json:"cheapP99us"`
}

// compactionReport quantifies sealed-shard fan-out degradation on a
// long-lived writer and what tiered compaction buys back: the same
// corpus sealed as 1, 4, 16 and fanseals shards, query latency and
// allocated bytes per query at each fan-out, then the widest writer
// fully compacted and re-measured. It also compares the compression
// rate of many tiny per-seal models against one model over the merged
// corpus, and carries the WAL crash-replay leg.
type compactionReport struct {
	Trajectories int   `json:"trajectories"`
	Queries      int   `json:"queries"`
	SealCounts   []int `json:"sealCounts"`
	// Latency keys: {count,find}.seals{N} for each fan-out in
	// SealCounts, plus {count,find}.compacted — the widest writer
	// after full compaction back to a single shard.
	Latency map[string]streamStat `json:"latency"`
	// BitsPerSymbolFanned is the compression rate with one tiny model
	// per seal; BitsPerSymbolCompacted after merging into one model
	// trained on the whole corpus.
	BitsPerSymbolFanned    float64 `json:"bitsPerSymbolFanned"`
	BitsPerSymbolCompacted float64 `json:"bitsPerSymbolCompacted"`
	// CompactSeconds is the wall time of compacting ShardsBefore
	// shards down to ShardsAfter (decode + rebuild + swap).
	CompactSeconds float64 `json:"compactSeconds"`
	ShardsBefore   int     `json:"shardsBefore"`
	ShardsAfter    int     `json:"shardsAfter"`
	// FindP50Speedup / CountP50Speedup divide the p50 at the widest
	// fan-out by the compacted p50: the headline compaction win.
	FindP50Speedup  float64          `json:"findP50Speedup"`
	CountP50Speedup float64          `json:"countP50Speedup"`
	WAL             *walReplayReport `json:"wal,omitempty"`
}

// walReplayReport is the crash-replay leg: rows appended (and
// acknowledged) through an engine running with a WAL, the engine
// abandoned without sealing or persisting, and a fresh engine opened
// over the same directory. RecoveredFraction must be 1 — every
// acknowledged row replayed from the log.
type walReplayReport struct {
	AppendedRows      int     `json:"appendedRows"`
	RecoveredRows     int     `json:"recoveredRows"`
	RecoveredFraction float64 `json:"recoveredFraction"`
	// ReplayOpenSeconds is the cold OpenDir time including the replay.
	ReplayOpenSeconds float64 `json:"replayOpenSeconds"`
	WALBytes          int64   `json:"walBytes"`
}

// servingReport compares heap-decoded serving against zero-copy mmap
// serving of the same index: open latency, resident footprint, and
// query latency once warm. Open times are medians over openRounds
// runs; RSS figures come from runtime.ReadMemStats (Go heap) and,
// where the kernel provides it, /proc/self/smaps_rollup (whole
// process).
type servingReport struct {
	V1Bytes int64 `json:"v1Bytes"`
	V3Bytes int64 `json:"v3Bytes"`
	// OpenHeapMs is the median wall time of Load on the v3 container
	// (full decode onto the heap); OpenMmapMs the median OpenMapped
	// time (map + O(metadata) validation).
	OpenHeapMs float64 `json:"openHeapMs"`
	OpenMmapMs float64 `json:"openMmapMs"`
	// OpenSpeedup = OpenHeapMs / OpenMmapMs.
	OpenSpeedup float64 `json:"openSpeedup"`
	// HeapAllocLoadedBytes / HeapAllocMappedBytes are Go-heap bytes
	// retained after loading (heap decode vs mapped view).
	HeapAllocLoadedBytes uint64 `json:"heapAllocLoadedBytes"`
	HeapAllocMappedBytes uint64 `json:"heapAllocMappedBytes"`
	// RSS deltas from /proc/self/smaps_rollup across the load, in
	// bytes; 0 when the kernel interface is unavailable.
	RSSLoadedBytes int64 `json:"rssLoadedBytes,omitempty"`
	RSSMappedBytes int64 `json:"rssMappedBytes,omitempty"`
	// Latency keys: {count,find}.{heap,mmap} — the same workload
	// straight against both instances, no engine cache.
	Latency map[string]percentiles `json:"latency"`
}

// ingestReport summarizes the live write path: append throughput into
// the memtable delta, seal latency (delta → compressed shard), and
// query latency with a hot (unsealed) delta versus the same data
// sealed.
type ingestReport struct {
	BaseTrajectories int `json:"baseTrajectories"`
	Appended         int `json:"appended"`
	// AppendsPerSecond is single-threaded Append throughput (row at a
	// time — the worst case; batches amortize the lock).
	AppendsPerSecond float64 `json:"appendsPerSecond"`
	// BatchAppendsPerSecond is AppendBatch throughput at batch 500.
	BatchAppendsPerSecond float64 `json:"batchAppendsPerSecond"`
	// SealSeconds is the latency of compacting the full delta into one
	// CiNCT-compressed shard (build + swap).
	SealSeconds float64 `json:"sealSeconds"`
	// Latency keys: append (per-row), search.{count,find}.hotdelta
	// (every appended row still uncompressed), search.{count,find}.sealed
	// (same data after compaction).
	Latency map[string]percentiles `json:"latency"`
}

// streamStat is one streaming-benchmark distribution: latency
// percentiles plus bytes allocated per query.
type streamStat struct {
	percentiles
	AllocBytesPerOp float64 `json:"allocBytesPerOp"`
}

// streamingReport summarizes streaming-vs-materializing Search runs
// over the high-offset corpus. Keys are search.{stream|materialize}.
// {limit10|limit1k|all}.
type streamingReport struct {
	Trajectories int `json:"trajectories"`
	MeanLen      int `json:"meanLen"`
	Symbols      int `json:"symbols"`
	Queries      int `json:"queries"`
	Shards       int `json:"shards"`
	// AllocRatioLimit10 is materializing bytes/op over streaming
	// bytes/op at limit 10 — the acceptance metric for the lazy path.
	AllocRatioLimit10 float64               `json:"allocRatioLimit10"`
	Latency           map[string]streamStat `json:"latency"`
}

// temporalReport summarizes the strict-path-query benchmark.
type temporalReport struct {
	Trajectories  int     `json:"trajectories"`
	MeanLen       int     `json:"meanLen"`
	Symbols       int     `json:"symbols"`
	Queries       int     `json:"queries"`
	SampleRate    int     `json:"sampleRate"`
	BuildSeconds  float64 `json:"buildSeconds"`
	IndexBytes    int64   `json:"indexBytes"`
	TimestampBits int     `json:"timestampBits"`
	// TimestampBitsPerEntry is the compressed temporal footprint per
	// stored timestamp.
	TimestampBitsPerEntry float64 `json:"timestampBitsPerEntry"`
	// IntervalFraction is the share of the corpus time span covered by
	// the selective query interval.
	IntervalFraction float64 `json:"intervalFraction"`
	// SpeedupP50 = find.legacy p50 / find.pushdown p50: how much the
	// interval pushdown beats the materialize-then-filter path on the
	// same selective workload.
	SpeedupP50 float64                `json:"speedupP50"`
	Latency    map[string]percentiles `json:"latency"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_PR10.json", "output JSON file")
		trajs   = flag.Int("trajs", 4000, "corpus size (trajectories)")
		meanLen = flag.Int("meanlen", 45, "mean trajectory length")
		queries = flag.Int("queries", 2000, "queries per latency distribution")
		qlen    = flag.Int("qlen", 8, "max query path length (sampled in [2, qlen])")
		limit   = flag.Int("limit", 10, "Find limit")
		shards  = flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "corpus + workload seed")

		ttrajs   = flag.Int("ttrajs", 400, "temporal corpus size (trajectories; 0 skips the temporal section)")
		tmeanLen = flag.Int("tmeanlen", 1600, "temporal corpus mean trajectory length (long: high match offsets)")
		tqueries = flag.Int("tqueries", 300, "temporal queries per latency distribution")
		tsample  = flag.Int("tsample", 2, "temporal index SA sample rate (dense: locate must not mask the filter)")

		itrajs = flag.Int("itrajs", 2000, "trajectories appended in the ingestion section (0 skips it)")

		fanseals = flag.Int("fanseals", 64, "max sealed-shard fan-out in the compaction section (0 skips it)")

		oclients = flag.Int("oclients", 16, "concurrent HTTP clients in the overload section (0 skips it)")
		oseconds = flag.Float64("oseconds", 3, "wall seconds per overload leg")

		gtraces = flag.Int("gtraces", 400, "simulated traces in the gps section (0 skips it)")
		gwalk   = flag.Int("gwalk", 24, "ground-truth walk length per gps trace (edges)")

		cnodes = flag.Int("cluster-nodes", 2, "nodes in the cluster scatter-gather section (0 skips it)")
		cslot  = flag.Int("cluster-slot", 64, "trajectory IDs per routing slot in the cluster section")
	)
	flag.Parse()
	cfg := benchConfig{
		out: *out, trajs: *trajs, meanLen: *meanLen, queries: *queries,
		qlen: *qlen, limit: *limit, shards: *shards, seed: *seed,
		ttrajs: *ttrajs, tmeanLen: *tmeanLen, tqueries: *tqueries, tsample: *tsample,
		itrajs: *itrajs, fanseals: *fanseals,
		oclients: *oclients, oseconds: *oseconds,
		gtraces: *gtraces, gwalk: *gwalk,
		cnodes: *cnodes, cslot: *cslot,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cinctbench: %v\n", err)
		os.Exit(1)
	}
}

type benchConfig struct {
	out                        string
	trajs, meanLen, queries    int
	qlen, limit, shards        int
	seed                       int64
	ttrajs, tmeanLen, tqueries int
	tsample                    int
	itrajs                     int
	fanseals                   int
	oclients                   int
	oseconds                   float64
	gtraces, gwalk             int
	cnodes, cslot              int
}

// runIngest benchmarks the live write path against the main corpus:
// per-row and batched append throughput into the delta, query latency
// while every appended row is still uncompressed (the hot-delta worst
// case), one full seal, and the same queries against the sealed
// result.
func runIngest(cfg benchConfig, base [][]uint32, workload [][]uint32) (*ingestReport, error) {
	fmt.Fprintf(os.Stderr, "ingest: appending %d trajectories...\n", cfg.itrajs)
	opts := cinct.DefaultOptions()
	opts.Shards = cfg.shards
	ix, err := cinct.Build(base, opts)
	if err != nil {
		return nil, err
	}
	w, err := cinct.NewWriterAt(ix, cinct.WriterConfig{Build: opts})
	if err != nil {
		return nil, err
	}
	gcfg := trajgen.Config{GridW: 26, GridH: 26, NumTrajs: cfg.itrajs, MeanLen: cfg.meanLen, Seed: cfg.seed + 21}
	extra := trajgen.Singapore2(gcfg).Trajs

	ir := &ingestReport{
		BaseTrajectories: len(base),
		Appended:         len(extra),
		Latency:          map[string]percentiles{},
	}
	t0 := time.Now()
	// measure() iterates a path workload; here each "path" is a row to
	// append, so the distribution is per-row append latency.
	if ir.Latency["append"], err = measure(extra, func(row []uint32) error {
		_, aerr := w.Append(row, nil)
		return aerr
	}); err != nil {
		return nil, err
	}
	ir.AppendsPerSecond = float64(len(extra)) / time.Since(t0).Seconds()

	ctx := context.Background()
	if ir.Latency["search.count.hotdelta"], err = measure(workload, func(p []uint32) error {
		r, serr := w.Search(ctx, cinct.Query{Path: p, Kind: cinct.CountOnly})
		if serr != nil {
			return serr
		}
		_, serr = r.Count()
		return serr
	}); err != nil {
		return nil, err
	}
	if ir.Latency["search.find.hotdelta"], err = measure(workload, func(p []uint32) error {
		r, serr := w.Search(ctx, cinct.Query{Path: p, Kind: cinct.Occurrences, Limit: cfg.limit})
		if serr != nil {
			return serr
		}
		_, serr = r.Count()
		return serr
	}); err != nil {
		return nil, err
	}

	t0 = time.Now()
	if _, err := w.Seal(); err != nil {
		return nil, err
	}
	ir.SealSeconds = time.Since(t0).Seconds()

	if ir.Latency["search.count.sealed"], err = measure(workload, func(p []uint32) error {
		r, serr := w.Search(ctx, cinct.Query{Path: p, Kind: cinct.CountOnly})
		if serr != nil {
			return serr
		}
		_, serr = r.Count()
		return serr
	}); err != nil {
		return nil, err
	}
	if ir.Latency["search.find.sealed"], err = measure(workload, func(p []uint32) error {
		r, serr := w.Search(ctx, cinct.Query{Path: p, Kind: cinct.Occurrences, Limit: cfg.limit})
		if serr != nil {
			return serr
		}
		_, serr = r.Count()
		return serr
	}); err != nil {
		return nil, err
	}

	// Batched appends on a fresh writer: the throughput shape servers
	// see from NDJSON ingest.
	w2, err := cinct.NewWriterAt(ix, cinct.WriterConfig{Build: opts})
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	const batch = 500
	for lo := 0; lo < len(extra); lo += batch {
		hi := lo + batch
		if hi > len(extra) {
			hi = len(extra)
		}
		if _, err := w2.AppendBatch(extra[lo:hi], nil); err != nil {
			return nil, err
		}
	}
	ir.BatchAppendsPerSecond = float64(len(extra)) / time.Since(t0).Seconds()
	return ir, nil
}

// runCompaction benchmarks sealed-shard fan-out: the same corpus
// sealed as 1, 4, 16 and cfg.fanseals shards (every backward search
// fans out across all of them), then the widest writer compacted back
// to one shard and re-measured on the identical workload.
func runCompaction(cfg benchConfig, corpus [][]uint32, workload [][]uint32) (*compactionReport, error) {
	var counts []int
	for _, n := range []int{1, 4, 16, cfg.fanseals} {
		if n >= 1 && n <= cfg.fanseals && (len(counts) == 0 || n > counts[len(counts)-1]) {
			counts = append(counts, n)
		}
	}
	cr := &compactionReport{
		Trajectories: len(corpus),
		Queries:      len(workload),
		SealCounts:   counts,
		Latency:      map[string]streamStat{},
	}
	ctx := context.Background()
	opts := cinct.DefaultOptions()
	// Dense SA sampling, for the same reason the temporal section uses
	// it: locate cost is identical at every fan-out, and at the default
	// rate it masks the per-shard search overhead this section exists
	// to measure.
	opts.SampleRate = 4
	bench := func(w *cinct.Writer, key string) error {
		var err error
		if cr.Latency["count."+key], err = measureAlloc(workload, func(p []uint32) error {
			r, serr := w.Search(ctx, cinct.Query{Path: p, Kind: cinct.CountOnly})
			if serr != nil {
				return serr
			}
			_, serr = r.Count()
			return serr
		}); err != nil {
			return err
		}
		cr.Latency["find."+key], err = measureAlloc(workload, func(p []uint32) error {
			r, serr := w.Search(ctx, cinct.Query{Path: p, Kind: cinct.Occurrences, Limit: cfg.limit})
			if serr != nil {
				return serr
			}
			_, serr = r.Count()
			return serr
		})
		return err
	}

	var widest *cinct.Writer
	for _, seals := range counts {
		fmt.Fprintf(os.Stderr, "compaction: sealing corpus as %d shard(s)...\n", seals)
		w, err := cinct.NewWriter(cinct.WriterConfig{Build: opts})
		if err != nil {
			return nil, err
		}
		// Near-equal index split: exactly `seals` chunks regardless of
		// divisibility, so the fan-out on the x-axis is exact.
		for i := 0; i < seals; i++ {
			lo, hi := i*len(corpus)/seals, (i+1)*len(corpus)/seals
			if lo == hi {
				continue
			}
			if _, err := w.AppendBatch(corpus[lo:hi], nil); err != nil {
				return nil, err
			}
			if _, err := w.Seal(); err != nil {
				return nil, err
			}
		}
		if err := bench(w, fmt.Sprintf("seals%d", seals)); err != nil {
			return nil, err
		}
		widest = w
	}

	ix, _ := widest.Snapshot()
	cr.BitsPerSymbolFanned = ix.Stats().BitsPerSymbol
	cr.ShardsBefore = widest.SealedShards()
	fmt.Fprintf(os.Stderr, "compaction: merging %d shards...\n", cr.ShardsBefore)
	t0 := time.Now()
	for {
		res, err := widest.Compact(cinct.FullCompaction)
		if err != nil {
			return nil, err
		}
		if res.Merged == 0 {
			break
		}
	}
	cr.CompactSeconds = time.Since(t0).Seconds()
	cr.ShardsAfter = widest.SealedShards()
	ix, _ = widest.Snapshot()
	cr.BitsPerSymbolCompacted = ix.Stats().BitsPerSymbol
	if err := bench(widest, "compacted"); err != nil {
		return nil, err
	}
	maxKey := fmt.Sprintf("seals%d", counts[len(counts)-1])
	if p := cr.Latency["find.compacted"].P50Us; p > 0 {
		cr.FindP50Speedup = cr.Latency["find."+maxKey].P50Us / p
	}
	if p := cr.Latency["count.compacted"].P50Us; p > 0 {
		cr.CountP50Speedup = cr.Latency["count."+maxKey].P50Us / p
	}

	wr, err := runWALReplay(corpus)
	if err != nil {
		return nil, err
	}
	cr.WAL = wr
	return cr, nil
}

// runWALReplay crashes an ingesting engine and measures recovery: a
// base index on disk, rows appended through an engine running with a
// WAL that fsyncs before every ack, the engine abandoned with its
// delta unsealed and unpersisted, and a fresh engine opened over the
// same directory. Every acknowledged row must come back.
func runWALReplay(corpus [][]uint32) (*walReplayReport, error) {
	fmt.Fprintf(os.Stderr, "compaction: WAL crash-replay leg...\n")
	dir, err := os.MkdirTemp("", "cinctbench-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	base := len(corpus) / 2
	if base > 512 {
		base = 512
	}
	ix, err := cinct.Build(corpus[:base], cinct.DefaultOptions())
	if err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "bench.cinct"))
	if err != nil {
		return nil, err
	}
	if _, err := ix.Save(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	walOpts := engine.WALOptions{Dir: filepath.Join(dir, "wal"), SyncBytes: -1}
	e1 := engine.New(engine.Options{SealThreshold: -1, WAL: walOpts})
	if _, err := e1.OpenDir(dir); err != nil {
		return nil, err
	}
	ctx := context.Background()
	extra := corpus[base:]
	const batch = 100
	for lo := 0; lo < len(extra); lo += batch {
		hi := lo + batch
		if hi > len(extra) {
			hi = len(extra)
		}
		if _, err := e1.Append(ctx, "bench", extra[lo:hi], nil); err != nil {
			return nil, err
		}
	}
	// Crash: abandon e1 without Shutdown, Seal, or persist. The WAL is
	// the only durable copy of the appended rows.
	t0 := time.Now()
	e2 := engine.New(engine.Options{SealThreshold: -1, WAL: walOpts})
	if _, err := e2.OpenDir(dir); err != nil {
		return nil, err
	}
	open := time.Since(t0).Seconds()
	defer e2.Shutdown()
	info, err := e2.Info("bench")
	if err != nil {
		return nil, err
	}
	wr := &walReplayReport{
		AppendedRows:      len(extra),
		RecoveredRows:     info.Stats.Trajectories - base,
		ReplayOpenSeconds: open,
		WALBytes:          info.WALBytes,
	}
	wr.RecoveredFraction = float64(wr.RecoveredRows) / float64(wr.AppendedRows)
	return wr, nil
}

func run(cfg benchConfig) error {
	out := cfg.out
	numTrajs, meanLen, numQueries := cfg.trajs, cfg.meanLen, cfg.queries
	qlen, limit, shards, seed := cfg.qlen, cfg.limit, cfg.shards, cfg.seed
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg.shards = shards // sections below (ingest) reuse the resolved count
	rep := report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     shards,
		Queries:    numQueries,
		FindLimit:  limit,
		Latency:    map[string]percentiles{},
	}

	fmt.Fprintf(os.Stderr, "generating corpus (%d trajectories)...\n", numTrajs)
	gcfg := trajgen.Config{GridW: 26, GridH: 26, NumTrajs: numTrajs, MeanLen: meanLen, Seed: seed}
	corpus := trajgen.Singapore2(gcfg).Trajs

	fmt.Fprintf(os.Stderr, "building index (%d shards)...\n", shards)
	opts := cinct.DefaultOptions()
	opts.Shards = shards
	t0 := time.Now()
	ix, err := cinct.Build(corpus, opts)
	if err != nil {
		return err
	}
	rep.BuildSeconds = time.Since(t0).Seconds()
	s := ix.Stats()
	rep.Trajectories = s.Trajectories
	rep.Symbols = s.TextLen
	rep.DistinctEdges = s.Edges
	rep.BitsPerSymbol = s.BitsPerSymbol

	tmp, err := os.CreateTemp("", "cinctbench-*.cinct")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	rep.IndexBytes, err = ix.Save(tmp)
	tmp.Close()
	if err != nil {
		return err
	}

	workload := querygen.New(corpus, 2, qlen, seed+1).Draw(numQueries)
	ctx := context.Background()

	// In-process through the engine, cache disabled: raw index latency.
	cold := engine.New(engine.Options{CacheEntries: -1})
	cold.Register("bench", ix)
	if rep.Latency["count.inproc"], err = measure(workload, func(p []uint32) error {
		_, err := cold.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return err
	}
	if rep.Latency["find.inproc"], err = measure(workload, func(p []uint32) error {
		_, err := cold.Find(ctx, "bench", p, limit)
		return err
	}); err != nil {
		return err
	}

	// Cache on, workload replayed twice so the measured pass hits.
	warm := engine.New(engine.Options{})
	warm.Register("bench", ix)
	for _, p := range workload {
		if _, err := warm.Count(ctx, "bench", p); err != nil {
			return err
		}
	}
	if rep.Latency["count.inproc.cached"], err = measure(workload, func(p []uint32) error {
		_, err := warm.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return err
	}

	// Over HTTP against a live server on a loopback listener, backed
	// by the cache-disabled engine so http-vs-inproc isolates pure
	// transport cost instead of conflating it with cache hits.
	srv := server.New(cold, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	cl := server.NewClient("http://"+l.Addr().String(), nil)
	if rep.Latency["count.http"], err = measure(workload, func(p []uint32) error {
		_, err := cl.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return err
	}
	if rep.Latency["find.http"], err = measure(workload, func(p []uint32) error {
		_, err := cl.Find(ctx, "bench", p, limit)
		return err
	}); err != nil {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil {
		return err
	}

	if cfg.ttrajs > 0 {
		tr, err := runTemporal(cfg)
		if err != nil {
			return err
		}
		rep.Temporal = tr
		sr, err := runStreaming(cfg)
		if err != nil {
			return err
		}
		rep.Streaming = sr
	}
	if cfg.itrajs > 0 {
		ir, err := runIngest(cfg, corpus, workload)
		if err != nil {
			return err
		}
		rep.Ingest = ir
	}
	if cfg.fanseals > 0 {
		pr, err := runCompaction(cfg, corpus, workload)
		if err != nil {
			return err
		}
		rep.Compaction = pr
	}
	if cfg.oclients > 0 {
		or, err := runOverload(cfg, corpus, workload)
		if err != nil {
			return err
		}
		rep.Overload = or
	}
	if cfg.gtraces > 0 {
		gr, err := runGPS(cfg)
		if err != nil {
			return err
		}
		rep.GPS = gr
	}
	if cfg.cnodes > 1 {
		cr, err := runCluster(cfg, ix, workload)
		if err != nil {
			return err
		}
		rep.Cluster = cr
	}
	fmt.Fprintf(os.Stderr, "serving section (heap vs mmap)...\n")
	if rep.Serving, err = runServing(ix, workload, limit); err != nil {
		return err
	}

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if err := os.WriteFile(out, body, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	os.Stdout.Write(body)
	return nil
}

// runCluster measures phase-1 scatter-gather: the same index served
// by one daemon versus a cluster of cfg.cnodes loopback daemons, the
// unified query workload driven through a client at each. Every node
// registers the same in-memory index (phase 1 ships identical corpus
// files to every node); the ring decides which node answers for which
// trajectories, so the scatter leg pays real HTTP fan-out and k-way
// merge on top of the identical index work.
func runCluster(cfg benchConfig, ix *cinct.Index, workload [][]uint32) (*clusterReport, error) {
	fmt.Fprintf(os.Stderr, "cluster section (%d-node scatter-gather)...\n", cfg.cnodes)
	cr := &clusterReport{
		Nodes:            cfg.cnodes,
		SlotTrajectories: cfg.cslot,
		Queries:          len(workload),
		Limit:            cfg.limit,
		Latency:          map[string]percentiles{},
	}
	ctx := context.Background()

	type node struct {
		eng *engine.Engine
		srv *server.Server
		ec  chan error
	}
	var nodes []*node
	shutdown := func() error {
		for _, n := range nodes {
			sc, cancel := context.WithTimeout(ctx, 5*time.Second)
			err := n.srv.Shutdown(sc)
			cancel()
			if err != nil {
				return err
			}
			if err := <-n.ec; err != nil {
				return err
			}
		}
		nodes = nil
		return nil
	}
	start := func(cl *cluster.Cluster, lis net.Listener) {
		eng := engine.New(engine.Options{CacheEntries: -1, Cluster: cl})
		eng.Register("bench", ix)
		srv := server.New(eng, server.Config{})
		n := &node{eng: eng, srv: srv, ec: make(chan error, 1)}
		go func() { n.ec <- srv.Serve(lis) }()
		nodes = append(nodes, n)
	}

	// Single-node baseline.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	start(nil, l)
	single := server.NewClient("http://"+l.Addr().String(), nil)
	if cr.Latency["search.single"], err = measure(workload, func(p []uint32) error {
		_, err := single.SearchPage(ctx, "bench", cinct.Query{Path: p, Limit: cfg.limit})
		return err
	}); err != nil {
		return nil, err
	}
	if err := shutdown(); err != nil {
		return nil, err
	}

	// The cluster: listeners first (the ring needs every address), then
	// one engine + server per node.
	listeners := make([]net.Listener, cfg.cnodes)
	addrs := make([]string, cfg.cnodes)
	for i := range listeners {
		if listeners[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, err
		}
		addrs[i] = "http://" + listeners[i].Addr().String()
	}
	for i := range listeners {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cl, err := cluster.New(cluster.Config{
			Self: addrs[i], Peers: peers, SlotTrajectories: cfg.cslot,
		})
		if err != nil {
			return nil, err
		}
		start(cl, listeners[i])
	}
	defer shutdown() //nolint:errcheck // best-effort on the error paths

	coord := server.NewClient(addrs[0], nil)
	if cr.Latency["search.scatter"], err = measure(workload, func(p []uint32) error {
		_, err := coord.SearchPage(ctx, "bench", cinct.Query{Path: p, Limit: cfg.limit})
		return err
	}); err != nil {
		return nil, err
	}
	// Count stays local by design (every node holds the full corpus):
	// the control number separating fan-out cost from transport cost.
	if cr.Latency["count.local"], err = measure(workload, func(p []uint32) error {
		_, err := coord.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return nil, err
	}
	return cr, shutdown()
}

// runOverload drives the full serving stack (engine worker pool +
// HTTP server on a loopback listener) past saturation twice: once
// with plain FIFO queueing (ShedCost 0 — the pre-admission-control
// behavior) and once with cost-aware shedding. Each client alternates
// cheap counts with unbounded occurrence scans of a hotspot edge, so
// the scans are exactly the queries that turn a full pool into a
// backlog the cheap traffic queues behind. A single worker keeps the
// pool saturated at bench-sized corpora; production pools shed the
// same way, just at higher absolute load.
func runOverload(cfg benchConfig, corpus, workload [][]uint32) (*overloadReport, error) {
	const (
		workers  = 1
		shedCost = 1000 // sheds unbounded scans, queues len(path)-cost counts
	)
	or := &overloadReport{
		Workers:     workers,
		Clients:     cfg.oclients,
		DurationSec: cfg.oseconds,
		ShedCost:    shedCost,
	}
	// The overload corpus concentrates traffic on one hotspot edge —
	// the arterial road every trajectory keeps crossing — so that one
	// unbounded Occurrences scan must locate ~1/64 of the whole corpus:
	// tens of milliseconds of worker time against counts that need
	// microseconds. That is the abusive query class admission control
	// exists for.
	var hog uint32
	for _, tr := range corpus {
		for _, e := range tr {
			if e >= hog {
				hog = e + 1
			}
		}
	}
	hot := make([][]uint32, len(corpus))
	for i, tr := range corpus {
		c := append([]uint32(nil), tr...)
		for j := 63; j < len(c); j += 64 {
			c[j] = hog
		}
		hot[i] = c
	}
	hix, err := cinct.Build(hot, cinct.DefaultOptions())
	if err != nil {
		return nil, err
	}
	hogPath := []uint32{hog}

	leg := func(label string, shed int64) (overloadLeg, error) {
		fmt.Fprintf(os.Stderr, "overload: %s leg (%d clients, %d workers, %.0fs)...\n",
			label, cfg.oclients, workers, cfg.oseconds)
		eng := engine.New(engine.Options{Workers: workers, CacheEntries: -1, ShedCost: shed})
		defer eng.CloseAll()
		eng.Register("bench", hix)
		srv := server.New(eng, server.Config{RequestTimeout: 500 * time.Millisecond})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return overloadLeg{}, err
		}
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(l) }()
		base := "http://" + l.Addr().String()

		var lg overloadLeg
		var mu sync.Mutex
		var durs []time.Duration
		ctx := context.Background()
		deadline := time.Now().Add(time.Duration(cfg.oseconds * float64(time.Second)))
		var wg sync.WaitGroup
		for c := 0; c < cfg.oclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// One persistent connection per client: the shared
				// DefaultClient caps idle conns per host at 2, and the
				// resulting handshake churn (tens of ms per request)
				// would swamp the engine-side queueing being measured.
				cl := server.NewClient(base, &http.Client{
					Transport: &http.Transport{MaxIdleConnsPerHost: 1},
				})
				rng := rand.New(rand.NewSource(cfg.seed + int64(100+c)))
				for i := 0; time.Now().Before(deadline); i++ {
					if i%2 == 1 {
						// The abusive scan: unbounded, locate-heavy.
						_, err := cl.SearchPage(ctx, "bench", cinct.Query{Path: hogPath, Kind: cinct.Occurrences})
						mu.Lock()
						lg.Requests++
						classify(&lg, err, true)
						mu.Unlock()
						continue
					}
					p := workload[rng.Intn(len(workload))]
					t0 := time.Now()
					_, err := cl.Count(ctx, "bench", p)
					d := time.Since(t0)
					mu.Lock()
					lg.Requests++
					classify(&lg, err, false)
					if err == nil {
						durs = append(durs, d)
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return overloadLeg{}, err
		}
		if err := <-errc; err != nil {
			return overloadLeg{}, err
		}
		lg.GoodputQPS = float64(lg.OK) / cfg.oseconds
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		if len(durs) > 0 {
			lg.CheapP50Us = float64(durs[int(0.50*float64(len(durs)-1))].Nanoseconds()) / 1e3
			lg.CheapP99Us = float64(durs[int(0.99*float64(len(durs)-1))].Nanoseconds()) / 1e3
		}
		return lg, nil
	}

	if or.Unprotected, err = leg("unprotected", 0); err != nil {
		return nil, err
	}
	if or.Protected, err = leg("protected", shedCost); err != nil {
		return nil, err
	}
	if or.Unprotected.GoodputQPS > 0 {
		or.GoodputGain = or.Protected.GoodputQPS / or.Unprotected.GoodputQPS
	}
	if or.Protected.CheapP99Us > 0 {
		or.CheapP99Improvement = or.Unprotected.CheapP99Us / or.Protected.CheapP99Us
	}
	return or, nil
}

// benchWalk is a U-turn-free random walk over the road network — the
// ground-truth paths the gps section simulates traces along. Immediate
// reversals are excluded because they are unrecoverable for a
// position-only matcher, which would turn geometry artifacts into
// phantom rejects.
func benchWalk(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []roadnet.EdgeID{cur}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			break
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, cur)
	}
	return path
}

// runGPS benchmarks the raw-ingestion pipeline off the serving stack:
// single-threaded map-matching throughput and per-trace latency over
// noisy traces simulated along known walks (with the matched-path
// exactness rate as a correctness sanity check), the accept rate as
// the noise sigma sweeps past the candidate radius, and
// append-to-notification latency for a standing query registered on
// each row's path before the row is appended.
func runGPS(cfg benchConfig) (*gpsReport, error) {
	const (
		noise = 0.05 // edge length is 1.0: a mild scatter
		dt    = int64(15)
	)
	fmt.Fprintf(os.Stderr, "gps: matching %d traces (%d-edge walks, noise %.2f)...\n",
		cfg.gtraces, cfg.gwalk, noise)
	g := roadnet.Grid(24, 24, cfg.seed+31)
	rng := rand.New(rand.NewSource(cfg.seed + 32))

	walks := make([][]roadnet.EdgeID, cfg.gtraces)
	traces := make([]gps.Trace, cfg.gtraces)
	at := int64(1000)
	gr := &gpsReport{
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Traces: cfg.gtraces, WalkLen: cfg.gwalk, Noise: noise,
	}
	for i := range walks {
		walks[i] = benchWalk(g, rng, cfg.gwalk)
		traces[i] = gps.Simulate(g, walks[i], noise, at, dt, rng)
		at += int64(len(traces[i].Points))*dt + 1000
		gr.Points += len(traces[i].Points)
	}

	m := gps.NewMatcher(g, mapmatch.Config{})
	matched := make([]gps.Matched, 0, cfg.gtraces)
	durs := make([]time.Duration, 0, cfg.gtraces)
	exact := 0
	t0 := time.Now()
	for i, tr := range traces {
		s0 := time.Now()
		mt, err := m.Match(tr)
		durs = append(durs, time.Since(s0))
		if err != nil {
			continue
		}
		matched = append(matched, mt)
		if pathEqual(mt.Edges, walks[i]) {
			exact++
		}
	}
	gr.MatchPointsPerSec = float64(gr.Points) / time.Since(t0).Seconds()
	gr.MatchLatency = summarize(durs)
	if len(matched) > 0 {
		gr.ExactPathRate = float64(exact) / float64(len(matched))
	}

	// Accept rate versus noise: identical walks per leg (fresh rng with
	// a fixed seed), only the sigma varies. The sweep straddles the
	// 0.8 candidate radius, where points start losing every candidate
	// and the gap budget stops covering for them.
	legTraces := (cfg.gtraces + 1) / 2
	for _, sigma := range []float64{0.05, 0.2, 0.4, 0.6, 0.8} {
		fmt.Fprintf(os.Stderr, "gps: accept-rate leg (noise %.2f, %d traces)...\n", sigma, legTraces)
		leg := gpsNoiseLeg{Noise: sigma, Total: legTraces}
		lr := rand.New(rand.NewSource(cfg.seed + 33))
		for i := 0; i < legTraces; i++ {
			w := benchWalk(g, lr, cfg.gwalk)
			tr := gps.Simulate(g, w, sigma, 1000, dt, lr)
			if _, err := m.Match(tr); err == nil {
				leg.Accepted++
			}
		}
		leg.Rate = float64(leg.Accepted) / float64(leg.Total)
		gr.AcceptRate = append(gr.AcceptRate, leg)
	}

	// Standing-query freshness: the rows are already matched, so the
	// clock covers exactly Append → predicate test → channel delivery.
	fmt.Fprintf(os.Stderr, "gps: append-to-notify leg (%d rows)...\n", len(matched))
	base := make([][]uint32, 0, 16)
	baseTimes := make([][]int64, 0, 16)
	for i := 0; i < 16; i++ {
		w := benchWalk(g, rng, cfg.gwalk)
		row := make([]uint32, len(w))
		col := make([]int64, len(w))
		for j, e := range w {
			row[j] = uint32(e)
			col[j] = int64(1000*i + 10*j)
		}
		base = append(base, row)
		baseTimes = append(baseTimes, col)
	}
	tix, err := cinct.BuildTemporal(base, baseTimes, nil)
	if err != nil {
		return nil, err
	}
	eng := engine.New(engine.Options{SealThreshold: -1})
	defer eng.Shutdown()
	defer eng.CloseAll()
	eng.RegisterTemporal("gpsbench", tix)

	ctx := context.Background()
	ndurs := make([]time.Duration, 0, len(matched))
	for _, mt := range matched {
		sub, err := eng.Subscribe("gpsbench", engine.Predicate{Path: mt.Edges}, engine.SubscribeOptions{})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := eng.Append(ctx, "gpsbench", [][]uint32{mt.Edges}, [][]int64{mt.Times}); err != nil {
			return nil, err
		}
		select {
		case <-sub.C():
			ndurs = append(ndurs, time.Since(t0))
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("gps: notification for appended row never arrived")
		}
		if err := eng.Unsubscribe("gpsbench", sub.ID()); err != nil {
			return nil, err
		}
	}
	gr.NotifyLatency = summarize(ndurs)
	return gr, nil
}

// pathEqual compares a matched wire path against its ground-truth walk.
func pathEqual(got []uint32, want []roadnet.EdgeID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != uint32(want[i]) {
			return false
		}
	}
	return true
}

// classify buckets one overload-leg outcome. scan marks the abusive
// queries, whose successes count separately from goodput.
func classify(lg *overloadLeg, err error, scan bool) {
	switch {
	case err == nil && scan:
		lg.ScanOK++
	case err == nil:
		lg.OK++
	case errors.Is(err, engine.ErrOverloaded):
		lg.Shed++
	case isTimeout(err):
		lg.Timeouts++
	default:
		lg.Errors++
	}
}

// isTimeout reports a request that died on the server's per-request
// deadline (504 over the wire, or the transport surfacing the body
// cut mid-stream).
func isTimeout(err error) bool {
	var ae *server.APIError
	if errors.As(err, &ae) {
		return ae.Status == 504
	}
	return strings.Contains(err.Error(), "deadline") || strings.Contains(err.Error(), "timeout")
}

// runTemporal benchmarks the strict-path-query path on its worst-case
// workload: long trajectories (matches at high offsets), a selective
// time interval, and frequent short paths — then reports the pushdown
// engine against an emulation of the pre-pushdown slow path.
func runTemporal(cfg benchConfig) (*temporalReport, error) {
	fmt.Fprintf(os.Stderr, "temporal: generating corpus (%d trajectories, mean length %d)...\n",
		cfg.ttrajs, cfg.tmeanLen)
	gcfg := trajgen.Config{GridW: 26, GridH: 26, NumTrajs: cfg.ttrajs, MeanLen: cfg.tmeanLen, Seed: cfg.seed + 7}
	corpus := trajgen.Singapore2(gcfg).Trajs

	// Timestamps: trajectory starts spread uniformly over one day,
	// seconds-scale steps per edge, so a sub-hour interval is selective
	// and most columns prune on their (min, max) summary.
	const horizon = int64(86400)
	rng := rand.New(rand.NewSource(cfg.seed + 8))
	times := make([][]int64, len(corpus))
	var entries int
	for k, tr := range corpus {
		col := make([]int64, len(tr))
		at := rng.Int63n(horizon)
		for i := range col {
			col[i] = at
			at += 1 + rng.Int63n(4)
		}
		times[k] = col
		entries += len(col)
	}
	from := horizon / 2
	to := from + 1800 // a 30-minute window out of a day

	fmt.Fprintf(os.Stderr, "temporal: building index...\n")
	opts := cinct.DefaultOptions()
	opts.SampleRate = cfg.tsample
	t0 := time.Now()
	tix, err := cinct.BuildTemporal(corpus, times, opts)
	if err != nil {
		return nil, err
	}
	tr := &temporalReport{
		Trajectories:          len(corpus),
		MeanLen:               cfg.tmeanLen,
		Symbols:               tix.Len(),
		Queries:               cfg.tqueries,
		SampleRate:            cfg.tsample,
		BuildSeconds:          time.Since(t0).Seconds(),
		TimestampBits:         tix.TimestampBits(),
		TimestampBitsPerEntry: float64(tix.TimestampBits()) / float64(entries),
		IntervalFraction:      float64(to-from) / float64(horizon),
		Latency:               map[string]percentiles{},
	}
	tmp, err := os.CreateTemp("", "cinctbench-*.tcinct")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	tr.IndexBytes, err = tix.Save(tmp)
	tmp.Close()
	if err != nil {
		return nil, err
	}

	// Query paths: bigrams drawn from the tails of long trajectories,
	// so their many occurrences sit at high offsets — the regime where
	// the old O(offset) per-hit decode hurt most.
	workload := make([][]uint32, 0, cfg.tqueries)
	for len(workload) < cfg.tqueries {
		t := corpus[rng.Intn(len(corpus))]
		if len(t) < 8 {
			continue
		}
		i := len(t) - 2 - rng.Intn(len(t)/4)
		workload = append(workload, t[i:i+2])
	}

	// The pre-pushdown slow path, emulated faithfully: materialize the
	// full spatial hit set, then per hit run the old Store.At cost
	// model — decode the delta column prefix up to the match offset,
	// no checkpoints, no summaries, no allocation.
	ls := newLegacyStore(times)
	legacy := func(p []uint32) error {
		hits, err := tix.Find(p, 0)
		if err != nil {
			return err
		}
		var out []cinct.TemporalMatch
		for _, h := range hits {
			if at := ls.at(h.Trajectory, h.Offset); at >= from && at <= to {
				out = append(out, cinct.TemporalMatch{Match: h, EnteredAt: at})
			}
		}
		_ = out
		return nil
	}
	if tr.Latency["find.legacy"], err = measure(workload, legacy); err != nil {
		return nil, err
	}
	if tr.Latency["find.pushdown"], err = measure(workload, func(p []uint32) error {
		_, err := tix.FindInInterval(p, from, to, 0)
		return err
	}); err != nil {
		return nil, err
	}
	tr.SpeedupP50 = tr.Latency["find.legacy"].P50Us / tr.Latency["find.pushdown"].P50Us
	if tr.Latency["find.pushdown.limit10"], err = measure(workload, func(p []uint32) error {
		_, err := tix.FindInInterval(p, 0, horizon, 10)
		return err
	}); err != nil {
		return nil, err
	}
	if tr.Latency["count.pushdown"], err = measure(workload, func(p []uint32) error {
		_, err := tix.CountInInterval(p, from, to)
		return err
	}); err != nil {
		return nil, err
	}

	// Serving-stack numbers: the same selective find and count through
	// the cache-disabled engine and over HTTP.
	ctx := context.Background()
	eng := engine.New(engine.Options{CacheEntries: -1})
	eng.RegisterTemporal("tbench", tix)
	if tr.Latency["find.inproc"], err = measure(workload, func(p []uint32) error {
		_, err := eng.FindInInterval(ctx, "tbench", p, from, to, 0)
		return err
	}); err != nil {
		return nil, err
	}
	srv := server.New(eng, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	cl := server.NewClient("http://"+l.Addr().String(), nil)
	if tr.Latency["find.http"], err = measure(workload, func(p []uint32) error {
		_, err := cl.FindInInterval(ctx, "tbench", p, from, to, 0)
		return err
	}); err != nil {
		return nil, err
	}
	if tr.Latency["count.http"], err = measure(workload, func(p []uint32) error {
		_, err := cl.CountInInterval(ctx, "tbench", p, from, to)
		return err
	}); err != nil {
		return nil, err
	}
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return nil, err
	}
	return tr, <-errc
}

// legacyStore replicates the pre-rework tempo layout byte for byte:
// one zig-zag varint delta blob with per-column starts, and a probe
// that decodes the column prefix [0, i] on every call — the exact
// O(offset) cost model the pushdown replaced. It exists so find.legacy
// measures the real old path, not a strawman.
type legacyStore struct {
	blob   []byte
	starts []int
}

func newLegacyStore(times [][]int64) *legacyStore {
	s := &legacyStore{starts: make([]int, len(times))}
	var buf [binary.MaxVarintLen64]byte
	for k, col := range times {
		s.starts[k] = len(s.blob)
		prev := int64(0)
		for _, t := range col {
			n := binary.PutVarint(buf[:], t-prev)
			s.blob = append(s.blob, buf[:n]...)
			prev = t
		}
	}
	return s
}

func (s *legacyStore) at(k, i int) int64 {
	pos := s.starts[k]
	prev := int64(0)
	for j := 0; j <= i; j++ {
		d, n := binary.Varint(s.blob[pos:])
		pos += n
		prev += d
	}
	return prev
}

// runStreaming benchmarks the unified Search path on the high-offset
// corpus: the same frequent tail bigrams as the temporal section
// (many occurrences per query), comparing the lazy, limit-bounded
// stream against the pre-redesign shape — materialize every
// occurrence, then truncate to the limit — at limit 10, 1000 and
// unlimited, with allocated bytes per query alongside latency.
func runStreaming(cfg benchConfig) (*streamingReport, error) {
	fmt.Fprintf(os.Stderr, "streaming: generating corpus (%d trajectories, mean length %d)...\n",
		cfg.ttrajs, cfg.tmeanLen)
	gcfg := trajgen.Config{GridW: 26, GridH: 26, NumTrajs: cfg.ttrajs, MeanLen: cfg.tmeanLen, Seed: cfg.seed + 7}
	corpus := trajgen.Singapore2(gcfg).Trajs
	shards := cfg.shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	opts := cinct.DefaultOptions()
	opts.Shards = shards
	opts.SampleRate = cfg.tsample
	fmt.Fprintf(os.Stderr, "streaming: building index (%d shards)...\n", shards)
	ix, err := cinct.Build(corpus, opts)
	if err != nil {
		return nil, err
	}
	sr := &streamingReport{
		Trajectories: len(corpus),
		MeanLen:      cfg.tmeanLen,
		Symbols:      ix.Len(),
		Queries:      cfg.tqueries,
		Shards:       shards,
		Latency:      map[string]streamStat{},
	}

	rng := rand.New(rand.NewSource(cfg.seed + 9))
	workload := make([][]uint32, 0, cfg.tqueries)
	for len(workload) < cfg.tqueries {
		t := corpus[rng.Intn(len(corpus))]
		if len(t) < 8 {
			continue
		}
		i := len(t) - 2 - rng.Intn(len(t)/4)
		workload = append(workload, t[i:i+2])
	}

	ctx := context.Background()
	stream := func(limit int) func(p []uint32) error {
		return func(p []uint32) error {
			r, err := ix.Search(ctx, cinct.Query{Path: p, Kind: cinct.Occurrences, Limit: limit})
			if err != nil {
				return err
			}
			for _, herr := range r.All() {
				if herr != nil {
					return herr
				}
			}
			return nil
		}
	}
	materialize := func(limit int) func(p []uint32) error {
		return func(p []uint32) error {
			r, err := ix.Search(ctx, cinct.Query{Path: p, Kind: cinct.Occurrences})
			if err != nil {
				return err
			}
			var all []cinct.Match
			for h, herr := range r.All() {
				if herr != nil {
					return herr
				}
				all = append(all, h.Match)
			}
			if limit > 0 && len(all) > limit {
				all = all[:limit]
			}
			_ = all
			return nil
		}
	}
	for _, lc := range []struct {
		key   string
		limit int
	}{{"limit10", 10}, {"limit1k", 1000}, {"all", 0}} {
		if sr.Latency["search.stream."+lc.key], err = measureAlloc(workload, stream(lc.limit)); err != nil {
			return nil, err
		}
		if sr.Latency["search.materialize."+lc.key], err = measureAlloc(workload, materialize(lc.limit)); err != nil {
			return nil, err
		}
	}
	if s := sr.Latency["search.stream.limit10"].AllocBytesPerOp; s > 0 {
		sr.AllocRatioLimit10 = sr.Latency["search.materialize.limit10"].AllocBytesPerOp / s
	}
	return sr, nil
}

// measureAlloc is measure plus allocated-bytes-per-op accounting via
// runtime.MemStats (single-threaded loop, so TotalAlloc deltas belong
// to the measured queries).
func measureAlloc(workload [][]uint32, fn func([]uint32) error) (streamStat, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	p, err := measure(workload, fn)
	if err != nil {
		return streamStat{}, err
	}
	runtime.ReadMemStats(&m1)
	return streamStat{
		percentiles:     p,
		AllocBytesPerOp: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(len(workload)),
	}, nil
}

// measure times fn over each query and summarizes the distribution. A
// query failure propagates as an error so run()'s cleanup (temp file,
// server shutdown) still executes.
func measure(workload [][]uint32, fn func([]uint32) error) (percentiles, error) {
	durs := make([]time.Duration, 0, len(workload))
	for _, p := range workload {
		t0 := time.Now()
		if err := fn(p); err != nil {
			return percentiles{}, fmt.Errorf("query failed: %w", err)
		}
		durs = append(durs, time.Since(t0))
	}
	return summarize(durs), nil
}

// summarize sorts one duration sample and reports its percentiles in
// microseconds.
func summarize(durs []time.Duration) percentiles {
	if len(durs) == 0 {
		return percentiles{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(durs)-1))
		return float64(durs[i].Nanoseconds()) / 1e3
	}
	return percentiles{
		P50Us:  at(0.50),
		P99Us:  at(0.99),
		MeanUs: float64(sum.Nanoseconds()) / float64(len(durs)) / 1e3,
	}
}

// procRSS reads the process resident set from /proc/self/smaps_rollup
// (bytes). Returns 0 on platforms or kernels without it.
func procRSS() int64 {
	data, err := os.ReadFile("/proc/self/smaps_rollup")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "Rss:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// heapInUse snapshots Go-heap live bytes after a full collection.
func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// runServing writes the index as both a v1 stream and a v3 container,
// then compares the two serving modes: decode-onto-heap (Load) versus
// zero-copy mmap (OpenMapped) — open latency, memory footprint, and
// warm query latency over the same workload.
func runServing(ix *cinct.Index, workload [][]uint32, limit int) (*servingReport, error) {
	const openRounds = 9
	rep := &servingReport{Latency: map[string]percentiles{}}

	dir, err := os.MkdirTemp("", "cinctbench-serving-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	v1Path := dir + "/index.v1.cinct"
	v3Path := dir + "/index.v3.cinct"
	f, err := os.Create(v1Path)
	if err != nil {
		return nil, err
	}
	rep.V1Bytes, err = ix.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if f, err = os.Create(v3Path); err != nil {
		return nil, err
	}
	rep.V3Bytes, err = ix.SaveV3(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	medianOpen := func(open func() error) (float64, error) {
		durs := make([]time.Duration, 0, openRounds)
		for i := 0; i < openRounds; i++ {
			t0 := time.Now()
			if err := open(); err != nil {
				return 0, err
			}
			durs = append(durs, time.Since(t0))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return float64(durs[openRounds/2].Nanoseconds()) / 1e6, nil
	}
	if rep.OpenHeapMs, err = medianOpen(func() error {
		f, err := os.Open(v3Path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = cinct.Load(f)
		return err
	}); err != nil {
		return nil, err
	}
	if rep.OpenMmapMs, err = medianOpen(func() error {
		m, err := cinct.OpenMapped(v3Path)
		if err != nil {
			return err
		}
		_ = m
		return nil
	}); err != nil {
		return nil, err
	}
	if rep.OpenMmapMs > 0 {
		rep.OpenSpeedup = rep.OpenHeapMs / rep.OpenMmapMs
	}

	// Footprint: load each instance with a clean heap baseline and
	// keep it live across the measurement. FreeOSMemory around each
	// reading forces a GC and returns freed spans to the OS, so the
	// RSS deltas track the instance rather than collector slack; the
	// post-load FreeOSMemory also drops transient decode garbage
	// before the instance is sized.
	debug.FreeOSMemory()
	base := heapInUse()
	baseRSS := procRSS()
	f, err = os.Open(v3Path)
	if err != nil {
		return nil, err
	}
	heap, err := cinct.Load(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	debug.FreeOSMemory()
	rep.HeapAllocLoadedBytes = heapInUse() - base
	if r := procRSS(); r > 0 && baseRSS > 0 {
		rep.RSSLoadedBytes = r - baseRSS
	}

	debug.FreeOSMemory()
	base = heapInUse()
	baseRSS = procRSS()
	mapped, err := cinct.OpenMapped(v3Path)
	if err != nil {
		return nil, err
	}
	debug.FreeOSMemory()
	rep.HeapAllocMappedBytes = heapInUse() - base
	if r := procRSS(); r > 0 && baseRSS > 0 {
		rep.RSSMappedBytes = r - baseRSS
	}

	// Warm query latency, no engine, no cache: the raw index surface.
	for _, tc := range []struct {
		key string
		ix  *cinct.Index
	}{{"heap", heap}, {"mmap", mapped}} {
		ix := tc.ix
		if rep.Latency["count."+tc.key], err = measure(workload, func(p []uint32) error {
			_ = ix.Count(p)
			return nil
		}); err != nil {
			return nil, err
		}
		if rep.Latency["find."+tc.key], err = measure(workload, func(p []uint32) error {
			_, err := ix.Find(p, limit)
			return err
		}); err != nil {
			return nil, err
		}
	}
	runtime.KeepAlive(heap)
	runtime.KeepAlive(mapped)
	return rep, nil
}
