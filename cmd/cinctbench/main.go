// Command cinctbench measures the serving stack end to end — index
// build time and size, then Count/Find latency distributions both
// in-process (through internal/engine, cache off and cache on) and
// over HTTP (through a live server on a loopback listener) — and
// writes the results as JSON so the repository's performance
// trajectory has comparable data points per PR.
//
//	cinctbench -out BENCH_PR2.json -trajs 4000 -queries 2000 -shards 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/querygen"
	"cinct/internal/trajgen"
	"cinct/server"
)

// percentiles summarizes one latency distribution in microseconds.
type percentiles struct {
	P50Us  float64 `json:"p50us"`
	P99Us  float64 `json:"p99us"`
	MeanUs float64 `json:"meanUs"`
}

type report struct {
	GoMaxProcs    int                    `json:"gomaxprocs"`
	Trajectories  int                    `json:"trajectories"`
	Symbols       int                    `json:"symbols"`
	DistinctEdges int                    `json:"distinctEdges"`
	Shards        int                    `json:"shards"`
	Queries       int                    `json:"queries"`
	FindLimit     int                    `json:"findLimit"`
	BuildSeconds  float64                `json:"buildSeconds"`
	IndexBytes    int64                  `json:"indexBytes"`
	BitsPerSymbol float64                `json:"bitsPerSymbol"`
	Latency       map[string]percentiles `json:"latency"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_PR2.json", "output JSON file")
		trajs   = flag.Int("trajs", 4000, "corpus size (trajectories)")
		meanLen = flag.Int("meanlen", 45, "mean trajectory length")
		queries = flag.Int("queries", 2000, "queries per latency distribution")
		qlen    = flag.Int("qlen", 8, "max query path length (sampled in [2, qlen])")
		limit   = flag.Int("limit", 10, "Find limit")
		shards  = flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "corpus + workload seed")
	)
	flag.Parse()
	if err := run(*out, *trajs, *meanLen, *queries, *qlen, *limit, *shards, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "cinctbench: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, numTrajs, meanLen, numQueries, qlen, limit, shards int, seed int64) error {
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	rep := report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     shards,
		Queries:    numQueries,
		FindLimit:  limit,
		Latency:    map[string]percentiles{},
	}

	fmt.Fprintf(os.Stderr, "generating corpus (%d trajectories)...\n", numTrajs)
	cfg := trajgen.Config{GridW: 26, GridH: 26, NumTrajs: numTrajs, MeanLen: meanLen, Seed: seed}
	corpus := trajgen.Singapore2(cfg).Trajs

	fmt.Fprintf(os.Stderr, "building index (%d shards)...\n", shards)
	opts := cinct.DefaultOptions()
	opts.Shards = shards
	t0 := time.Now()
	ix, err := cinct.Build(corpus, opts)
	if err != nil {
		return err
	}
	rep.BuildSeconds = time.Since(t0).Seconds()
	s := ix.Stats()
	rep.Trajectories = s.Trajectories
	rep.Symbols = s.TextLen
	rep.DistinctEdges = s.Edges
	rep.BitsPerSymbol = s.BitsPerSymbol

	tmp, err := os.CreateTemp("", "cinctbench-*.cinct")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	rep.IndexBytes, err = ix.Save(tmp)
	tmp.Close()
	if err != nil {
		return err
	}

	workload := querygen.New(corpus, 2, qlen, seed+1).Draw(numQueries)
	ctx := context.Background()

	// In-process through the engine, cache disabled: raw index latency.
	cold := engine.New(engine.Options{CacheEntries: -1})
	cold.Register("bench", ix)
	if rep.Latency["count.inproc"], err = measure(workload, func(p []uint32) error {
		_, err := cold.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return err
	}
	if rep.Latency["find.inproc"], err = measure(workload, func(p []uint32) error {
		_, err := cold.Find(ctx, "bench", p, limit)
		return err
	}); err != nil {
		return err
	}

	// Cache on, workload replayed twice so the measured pass hits.
	warm := engine.New(engine.Options{})
	warm.Register("bench", ix)
	for _, p := range workload {
		if _, err := warm.Count(ctx, "bench", p); err != nil {
			return err
		}
	}
	if rep.Latency["count.inproc.cached"], err = measure(workload, func(p []uint32) error {
		_, err := warm.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return err
	}

	// Over HTTP against a live server on a loopback listener, backed
	// by the cache-disabled engine so http-vs-inproc isolates pure
	// transport cost instead of conflating it with cache hits.
	srv := server.New(cold, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	cl := server.NewClient("http://"+l.Addr().String(), nil)
	if rep.Latency["count.http"], err = measure(workload, func(p []uint32) error {
		_, err := cl.Count(ctx, "bench", p)
		return err
	}); err != nil {
		return err
	}
	if rep.Latency["find.http"], err = measure(workload, func(p []uint32) error {
		_, err := cl.Find(ctx, "bench", p, limit)
		return err
	}); err != nil {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil {
		return err
	}

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if err := os.WriteFile(out, body, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	os.Stdout.Write(body)
	return nil
}

// measure times fn over each query and summarizes the distribution. A
// query failure propagates as an error so run()'s cleanup (temp file,
// server shutdown) still executes.
func measure(workload [][]uint32, fn func([]uint32) error) (percentiles, error) {
	durs := make([]time.Duration, 0, len(workload))
	for _, p := range workload {
		t0 := time.Now()
		if err := fn(p); err != nil {
			return percentiles{}, fmt.Errorf("query failed: %w", err)
		}
		durs = append(durs, time.Since(t0))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(durs)-1))
		return float64(durs[i].Nanoseconds()) / 1e3
	}
	return percentiles{
		P50Us:  at(0.50),
		P99Us:  at(0.99),
		MeanUs: float64(sum.Nanoseconds()) / float64(len(durs)) / 1e3,
	}, nil
}
