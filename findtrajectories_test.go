package cinct

import (
	"errors"
	"sort"
	"testing"

	"cinct/internal/trajgen"
)

func TestFindTrajectoriesDedupes(t *testing.T) {
	// One trajectory traverses the same path twice; it must be listed
	// once.
	trajs := [][]uint32{
		{1, 2, 3, 1, 2, 9}, // path 1→2 twice
		{1, 2},
		{7, 8},
	}
	ix, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Count([]uint32{1, 2}); got != 3 {
		t.Fatalf("Count = %d, want 3 occurrences", got)
	}
	ids, err := ix.FindTrajectories([]uint32{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("FindTrajectories = %v, want [0 1]", ids)
	}
	// Limit applies after dedup.
	ids, err = ix.FindTrajectories([]uint32{1, 2}, 1)
	if err != nil || len(ids) != 1 {
		t.Fatalf("limited = %v (%v)", ids, err)
	}
}

func TestFindTrajectoriesAgainstBruteForce(t *testing.T) {
	cfg := trajgen.Config{GridW: 9, GridH: 9, NumTrajs: 250, MeanLen: 25, Seed: 17}
	d := trajgen.Singapore2(cfg)
	ix, err := Build(d.Trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		src := d.Trajs[trial%len(d.Trajs)]
		if len(src) < 4 {
			continue
		}
		path := src[1:4]
		// Brute force: scan every trajectory for the sub-path.
		var want []int
		for k, tr := range d.Trajs {
			for i := 0; i+len(path) <= len(tr); i++ {
				match := true
				for j := range path {
					if tr[i+j] != path[j] {
						match = false
						break
					}
				}
				if match {
					want = append(want, k)
					break
				}
			}
		}
		sort.Ints(want)
		got, err := ix.FindTrajectories(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d trajectories, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ids differ at %d: %v vs %v", trial, i, got, want)
			}
		}
	}
}

func TestFindTrajectoriesNeedsLocate(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleRate = 0
	ix, err := Build([][]uint32{{1, 2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.FindTrajectories([]uint32{1}, 0); !errors.Is(err, ErrNoLocate) {
		t.Fatalf("want ErrNoLocate, got %v", err)
	}
}
