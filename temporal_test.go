package cinct

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cinct/internal/tempo"
	"cinct/internal/trajgen"
)

// timedCorpus generates trajectories with plausible entry times.
func timedCorpus(seed int64) ([][]uint32, [][]int64) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 120, MeanLen: 20, Seed: seed}
	d := trajgen.MOGen(cfg)
	rng := rand.New(rand.NewSource(seed))
	times := make([][]int64, len(d.Trajs))
	for k, tr := range d.Trajs {
		col := make([]int64, len(tr))
		t := int64(1_700_000_000) + rng.Int63n(86400) // within one day
		for i := range col {
			col[i] = t
			t += 20 + rng.Int63n(60)
		}
		times[k] = col
	}
	return d.Trajs, times
}

func TestTemporalStrictPathQuery(t *testing.T) {
	trajs, times := timedCorpus(1)
	ix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a path known to occur and query exactly its entry window.
	k := 7
	path := trajs[k][2:5]
	entered := times[k][2]

	all, err := ix.FindInInterval(path, entered, entered, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range all {
		if m.Trajectory == k && m.Offset == 2 {
			found = true
			if m.EnteredAt != entered {
				t.Fatalf("EnteredAt = %d, want %d", m.EnteredAt, entered)
			}
		}
	}
	if !found {
		t.Fatal("planted temporal occurrence not reported")
	}

	// The interval filter must agree with a brute-force check.
	spatial, err := ix.Find(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := entered-3600, entered+3600
	want := 0
	for _, h := range spatial {
		at := times[h.Trajectory][h.Offset]
		if at >= lo && at <= hi {
			want++
		}
	}
	got, err := ix.FindInInterval(path, lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("interval query returned %d, brute force %d", len(got), want)
	}
	// Empty interval.
	none, err := ix.FindInInterval(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatal("far-past interval should match nothing")
	}
}

func TestTemporalTimestampsRoundTrip(t *testing.T) {
	trajs, times := timedCorpus(2)
	ix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 10, len(trajs) - 1} {
		got := ix.Timestamps(k)
		for i := range times[k] {
			if got[i] != times[k][i] {
				t.Fatalf("trajectory %d timestamps differ at %d", k, i)
			}
		}
	}
	if ix.TimestampBits() <= 0 {
		t.Fatal("TimestampBits must be positive")
	}
}

func TestTemporalSaveLoad(t *testing.T) {
	trajs, times := timedCorpus(3)
	ix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTemporal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var path []uint32
	for _, tr := range trajs {
		if len(tr) >= 3 {
			path = tr[:3]
			break
		}
	}
	a, err := ix.FindInInterval(path, 0, 1<<62, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.FindInInterval(path, 0, 1<<62, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reloaded temporal index disagrees: %d vs %d", len(a), len(b))
	}
}

// pathIn returns a planted sub-path [lo, hi) from the first trajectory
// at or after k long enough to contain it.
func pathIn(t *testing.T, trajs [][]uint32, k, lo, hi int) []uint32 {
	t.Helper()
	for ; k < len(trajs); k++ {
		if len(trajs[k]) >= hi {
			return trajs[k][lo:hi]
		}
	}
	t.Fatalf("no trajectory of length >= %d", hi)
	return nil
}

// testIntervals derives a spread of interval shapes from a time range:
// everything, selective slices, a point, and an empty range.
func testIntervals(times [][]int64) [][2]int64 {
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, col := range times {
		for _, at := range col {
			if at < lo {
				lo = at
			}
			if at > hi {
				hi = at
			}
		}
	}
	span := hi - lo
	return [][2]int64{
		{math.MinInt64, math.MaxInt64},
		{lo, hi},
		{lo + span/4, lo + span/2},
		{lo + span/2, lo + span/2 + span/20},
		{lo, lo},
		{hi + 1, hi + 2},
		{lo - 10, lo - 1},
	}
}

// TestTemporalShardedMatchesMonolithic pins the sharded temporal
// engine's answers — matches and counts, across interval shapes and
// limits — to the monolithic index over the same corpus.
func TestTemporalShardedMatchesMonolithic(t *testing.T) {
	trajs, times := timedCorpus(5)
	mono, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Shards = 3
	shard, err := BuildTemporal(trajs, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(shard.stores) != 3 {
		t.Fatalf("sharded temporal index has %d stores, want 3", len(shard.stores))
	}
	paths := [][]uint32{pathIn(t, trajs, 0, 0, 2), pathIn(t, trajs, 7, 2, 5), pathIn(t, trajs, 40, 0, 1), {1 << 30}}
	for _, path := range paths {
		for _, iv := range testIntervals(times) {
			for _, limit := range []int{0, 1, 3} {
				want, err := mono.FindInInterval(path, iv[0], iv[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				got, err := shard.FindInInterval(path, iv[0], iv[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
					t.Fatalf("FindInInterval(%v, [%d,%d], %d): sharded %v, monolithic %v",
						path, iv[0], iv[1], limit, got, want)
				}
			}
			wantN, err := mono.CountInInterval(path, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			gotN, err := shard.CountInInterval(path, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("CountInInterval(%v, [%d,%d]): sharded %d, monolithic %d",
					path, iv[0], iv[1], gotN, wantN)
			}
			all, err := mono.FindInInterval(path, iv[0], iv[1], 0)
			if err != nil {
				t.Fatal(err)
			}
			if wantN != len(all) {
				t.Fatalf("CountInInterval(%v, [%d,%d]) = %d but FindInInterval returned %d",
					path, iv[0], iv[1], wantN, len(all))
			}
		}
	}
}

// TestTemporalLegacyFormatLoads writes the pre-container layout by
// hand — spatial index immediately followed by one corpus-wide store,
// both monolithic and sharded-spatial variants — and checks that
// LoadTemporal still accepts it with identical answers.
func TestTemporalLegacyFormatLoads(t *testing.T) {
	trajs, times := timedCorpus(6)
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		want, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatal(err)
		}
		var legacy bytes.Buffer
		if _, err := want.Index.Save(&legacy); err != nil {
			t.Fatal(err)
		}
		if _, err := tempo.New(times).Save(&legacy); err != nil {
			t.Fatal(err)
		}
		got, err := LoadTemporal(&legacy)
		if err != nil {
			t.Fatalf("shards=%d: legacy load: %v", shards, err)
		}
		if got.Index.Shards() != shards {
			t.Fatalf("legacy load: %d shards, want %d", got.Index.Shards(), shards)
		}
		path := pathIn(t, trajs, 7, 2, 5)
		for _, iv := range testIntervals(times) {
			for _, limit := range []int{0, 2} {
				a, err := want.FindInInterval(path, iv[0], iv[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				b, err := got.FindInInterval(path, iv[0], iv[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) && (len(a) != 0 || len(b) != 0) {
					t.Fatalf("shards=%d [%d,%d] limit %d: legacy %v, built %v",
						shards, iv[0], iv[1], limit, b, a)
				}
			}
			an, err := want.CountInInterval(path, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			bn, err := got.CountInInterval(path, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			if an != bn {
				t.Fatalf("shards=%d [%d,%d]: legacy count %d, built %d", shards, iv[0], iv[1], bn, an)
			}
		}
	}
}

// TestTemporalLoadRejectsShapeMismatch builds legacy bytes whose
// timestamp columns are shorter than the trajectories; the load must
// fail instead of arming a panic inside a later query.
func TestTemporalLoadRejectsShapeMismatch(t *testing.T) {
	trajs, times := timedCorpus(7)
	ix, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	short := make([][]int64, len(times))
	copy(short, times)
	short[3] = short[3][:1]
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tempo.New(short).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTemporal(&buf); err == nil {
		t.Fatal("column/trajectory length mismatch not rejected at load")
	}
	// Column count mismatch as well.
	buf.Reset()
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tempo.New(times[:len(times)-1]).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTemporal(&buf); err == nil {
		t.Fatal("column count mismatch not rejected at load")
	}
}

// TestTemporalEarlyExitAndPruning is the pushdown regression test: a
// small limit must bound the timestamp decode work instead of probing
// every spatial hit, and an interval that excludes every trajectory
// must decode nothing at all.
func TestTemporalEarlyExitAndPruning(t *testing.T) {
	trajs, times := timedCorpus(8)
	tix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A short path with many occurrences.
	path := pathIn(t, trajs, 7, 2, 3)
	n, err := tix.CountInInterval(path, math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("need a frequent path for the early-exit test; got %d hits", n)
	}
	store := tix.stores[0]

	store.ResetAtSteps()
	if _, err := tix.FindInInterval(path, math.MinInt64, math.MaxInt64, 0); err != nil {
		t.Fatal(err)
	}
	stepsAll := store.AtSteps()

	store.ResetAtSteps()
	got, err := tix.FindInInterval(path, math.MinInt64, math.MaxInt64, 1)
	if err != nil {
		t.Fatal(err)
	}
	steps1 := store.AtSteps()
	if len(got) != 1 {
		t.Fatalf("limit=1 returned %d matches", len(got))
	}
	if steps1 > tempo.BlockSize {
		t.Fatalf("limit=1 decoded %d varints, want <= one block (%d)", steps1, tempo.BlockSize)
	}
	if stepsAll <= steps1 {
		t.Fatalf("limit=0 decoded %d varints, limit=1 decoded %d: no early exit", stepsAll, steps1)
	}

	// Summary pruning: an interval before every timestamp touches no
	// blob bytes.
	store.ResetAtSteps()
	none, err := tix.FindInInterval(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("far-past interval matched %d", len(none))
	}
	if steps := store.AtSteps(); steps != 0 {
		t.Fatalf("pruned interval still decoded %d varints", steps)
	}
}

func TestTemporalBuildValidation(t *testing.T) {
	trajs, times := timedCorpus(4)
	if _, err := BuildTemporal(trajs, times[:len(times)-1], nil); err == nil {
		t.Fatal("column count mismatch should error")
	}
	bad := make([][]int64, len(times))
	copy(bad, times)
	bad[0] = bad[0][:1]
	if _, err := BuildTemporal(trajs, bad, nil); err == nil {
		t.Fatal("column length mismatch should error")
	}
	opts := DefaultOptions()
	opts.SampleRate = 0
	if _, err := BuildTemporal(trajs, times, opts); err == nil {
		t.Fatal("SampleRate=0 should be rejected for temporal indexes")
	}
}
