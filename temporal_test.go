package cinct

import (
	"bytes"
	"math/rand"
	"testing"

	"cinct/internal/trajgen"
)

// timedCorpus generates trajectories with plausible entry times.
func timedCorpus(seed int64) ([][]uint32, [][]int64) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 120, MeanLen: 20, Seed: seed}
	d := trajgen.MOGen(cfg)
	rng := rand.New(rand.NewSource(seed))
	times := make([][]int64, len(d.Trajs))
	for k, tr := range d.Trajs {
		col := make([]int64, len(tr))
		t := int64(1_700_000_000) + rng.Int63n(86400) // within one day
		for i := range col {
			col[i] = t
			t += 20 + rng.Int63n(60)
		}
		times[k] = col
	}
	return d.Trajs, times
}

func TestTemporalStrictPathQuery(t *testing.T) {
	trajs, times := timedCorpus(1)
	ix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a path known to occur and query exactly its entry window.
	k := 7
	path := trajs[k][2:5]
	entered := times[k][2]

	all, err := ix.FindInInterval(path, entered, entered, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range all {
		if m.Trajectory == k && m.Offset == 2 {
			found = true
			if m.EnteredAt != entered {
				t.Fatalf("EnteredAt = %d, want %d", m.EnteredAt, entered)
			}
		}
	}
	if !found {
		t.Fatal("planted temporal occurrence not reported")
	}

	// The interval filter must agree with a brute-force check.
	spatial, err := ix.Find(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := entered-3600, entered+3600
	want := 0
	for _, h := range spatial {
		at := times[h.Trajectory][h.Offset]
		if at >= lo && at <= hi {
			want++
		}
	}
	got, err := ix.FindInInterval(path, lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("interval query returned %d, brute force %d", len(got), want)
	}
	// Empty interval.
	none, err := ix.FindInInterval(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatal("far-past interval should match nothing")
	}
}

func TestTemporalTimestampsRoundTrip(t *testing.T) {
	trajs, times := timedCorpus(2)
	ix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 10, len(trajs) - 1} {
		got := ix.Timestamps(k)
		for i := range times[k] {
			if got[i] != times[k][i] {
				t.Fatalf("trajectory %d timestamps differ at %d", k, i)
			}
		}
	}
	if ix.TimestampBits() <= 0 {
		t.Fatal("TimestampBits must be positive")
	}
}

func TestTemporalSaveLoad(t *testing.T) {
	trajs, times := timedCorpus(3)
	ix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTemporal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var path []uint32
	for _, tr := range trajs {
		if len(tr) >= 3 {
			path = tr[:3]
			break
		}
	}
	a, err := ix.FindInInterval(path, 0, 1<<62, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.FindInInterval(path, 0, 1<<62, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reloaded temporal index disagrees: %d vs %d", len(a), len(b))
	}
}

func TestTemporalBuildValidation(t *testing.T) {
	trajs, times := timedCorpus(4)
	if _, err := BuildTemporal(trajs, times[:len(times)-1], nil); err == nil {
		t.Fatal("column count mismatch should error")
	}
	bad := make([][]int64, len(times))
	copy(bad, times)
	bad[0] = bad[0][:1]
	if _, err := BuildTemporal(trajs, bad, nil); err == nil {
		t.Fatal("column length mismatch should error")
	}
	opts := DefaultOptions()
	opts.SampleRate = 0
	if _, err := BuildTemporal(trajs, times, opts); err == nil {
		t.Fatal("SampleRate=0 should be rejected for temporal indexes")
	}
}
