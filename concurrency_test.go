package cinct

import (
	"sync"
	"testing"

	"cinct/internal/trajgen"
)

// TestConcurrentQueries hammers one index from many goroutines; run
// with -race to verify the immutability claim in the Index docs.
func TestConcurrentQueries(t *testing.T) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 200, MeanLen: 25, Seed: 13}
	d := trajgen.Singapore2(cfg)
	ix, err := Build(d.Trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth, computed single-threaded.
	paths := make([][]uint32, 0, 50)
	want := make([]int, 0, 50)
	for k := 0; k < 50; k++ {
		tr := d.Trajs[k%len(d.Trajs)]
		if len(tr) < 4 {
			continue
		}
		p := tr[:4]
		paths = append(paths, p)
		want = append(want, ix.Count(p))
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (g + rep) % len(paths)
				if got := ix.Count(paths[i]); got != want[i] {
					errs <- "Count changed under concurrency"
					return
				}
				if _, err := ix.Find(paths[i], 5); err != nil {
					errs <- err.Error()
					return
				}
				if _, err := ix.Trajectory(i % ix.NumTrajectories()); err != nil {
					errs <- err.Error()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
