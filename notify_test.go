package cinct

import (
	"testing"
)

// TestOnAppendHook pins the notification hook contract: one call per
// Append/AppendBatch, carrying the first assigned ID and the landed
// rows, after the rows are visible to Search.
func TestOnAppendHook(t *testing.T) {
	type ev struct {
		first int
		rows  int
		timed bool
	}
	var got []ev
	w, err := NewTemporalWriter(WriterConfig{
		OnAppend: func(first int, trajs [][]uint32, times [][]int64) {
			got = append(got, ev{first, len(trajs), times != nil})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]uint32{1, 2, 3}, []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(
		[][]uint32{{4, 5}, {6}},
		[][]int64{{40, 50}, {60}},
	); err != nil {
		t.Fatal(err)
	}
	want := []ev{{0, 1, true}, {1, 2, true}}
	if len(got) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Spatial writers pass nil times through.
	got = nil
	ws, err := NewWriter(WriterConfig{
		OnAppend: func(first int, trajs [][]uint32, times [][]int64) {
			got = append(got, ev{first, len(trajs), times != nil})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Append([]uint32{7}, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (ev{0, 1, false}) {
		t.Fatalf("spatial hook events = %+v", got)
	}
}

func TestMatchRow(t *testing.T) {
	edges := []uint32{1, 2, 3, 2, 3, 4}
	times := []int64{10, 20, 30, 40, 50, 60}
	cases := []struct {
		name    string
		path    []uint32
		iv      *Interval
		times   []int64
		wantOff int
		wantAt  int64
		wantOK  bool
	}{
		{"first occurrence wins", []uint32{2, 3}, nil, times, 1, 20, true},
		{"interval selects later occurrence", []uint32{2, 3}, &Interval{From: 35, To: 45}, times, 3, 40, true},
		{"interval excludes all", []uint32{2, 3}, &Interval{From: 100, To: 200}, times, 0, 0, false},
		{"no occurrence", []uint32{9}, nil, times, 0, 0, false},
		{"empty path", nil, nil, times, 0, 0, false},
		{"untimed row, spatial predicate", []uint32{3, 4}, nil, nil, 4, 0, true},
		{"untimed row, temporal predicate", []uint32{3, 4}, &Interval{From: 0, To: 100}, nil, 0, 0, false},
		{"closed interval boundaries", []uint32{4}, &Interval{From: 60, To: 60}, times, 5, 60, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off, at, ok := MatchRow(edges, tc.times, tc.path, tc.iv)
			if ok != tc.wantOK || off != tc.wantOff || at != tc.wantAt {
				t.Fatalf("MatchRow = (%d, %d, %v), want (%d, %d, %v)",
					off, at, ok, tc.wantOff, tc.wantAt, tc.wantOK)
			}
		})
	}
}
